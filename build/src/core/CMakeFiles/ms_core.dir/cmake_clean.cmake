file(REMOVE_RECURSE
  "CMakeFiles/ms_core.dir/log.cpp.o"
  "CMakeFiles/ms_core.dir/log.cpp.o.d"
  "CMakeFiles/ms_core.dir/rng.cpp.o"
  "CMakeFiles/ms_core.dir/rng.cpp.o.d"
  "CMakeFiles/ms_core.dir/stats.cpp.o"
  "CMakeFiles/ms_core.dir/stats.cpp.o.d"
  "CMakeFiles/ms_core.dir/table.cpp.o"
  "CMakeFiles/ms_core.dir/table.cpp.o.d"
  "CMakeFiles/ms_core.dir/time.cpp.o"
  "CMakeFiles/ms_core.dir/time.cpp.o.d"
  "libms_core.a"
  "libms_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ms_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
