# Empty dependencies file for ms_core.
# This may be replaced when dependencies are built.
