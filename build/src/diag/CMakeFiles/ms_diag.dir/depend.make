# Empty dependencies file for ms_diag.
# This may be replaced when dependencies are built.
