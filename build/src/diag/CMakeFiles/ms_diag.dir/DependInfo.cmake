
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/diag/heatmap.cpp" "src/diag/CMakeFiles/ms_diag.dir/heatmap.cpp.o" "gcc" "src/diag/CMakeFiles/ms_diag.dir/heatmap.cpp.o.d"
  "/root/repo/src/diag/skew.cpp" "src/diag/CMakeFiles/ms_diag.dir/skew.cpp.o" "gcc" "src/diag/CMakeFiles/ms_diag.dir/skew.cpp.o.d"
  "/root/repo/src/diag/stream.cpp" "src/diag/CMakeFiles/ms_diag.dir/stream.cpp.o" "gcc" "src/diag/CMakeFiles/ms_diag.dir/stream.cpp.o.d"
  "/root/repo/src/diag/timeline.cpp" "src/diag/CMakeFiles/ms_diag.dir/timeline.cpp.o" "gcc" "src/diag/CMakeFiles/ms_diag.dir/timeline.cpp.o.d"
  "/root/repo/src/diag/viz3d.cpp" "src/diag/CMakeFiles/ms_diag.dir/viz3d.cpp.o" "gcc" "src/diag/CMakeFiles/ms_diag.dir/viz3d.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/ms_core.dir/DependInfo.cmake"
  "/root/repo/build/src/parallel/CMakeFiles/ms_parallel.dir/DependInfo.cmake"
  "/root/repo/build/src/model/CMakeFiles/ms_model.dir/DependInfo.cmake"
  "/root/repo/build/src/collective/CMakeFiles/ms_collective.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/ms_net.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
