file(REMOVE_RECURSE
  "CMakeFiles/ms_diag.dir/heatmap.cpp.o"
  "CMakeFiles/ms_diag.dir/heatmap.cpp.o.d"
  "CMakeFiles/ms_diag.dir/skew.cpp.o"
  "CMakeFiles/ms_diag.dir/skew.cpp.o.d"
  "CMakeFiles/ms_diag.dir/stream.cpp.o"
  "CMakeFiles/ms_diag.dir/stream.cpp.o.d"
  "CMakeFiles/ms_diag.dir/timeline.cpp.o"
  "CMakeFiles/ms_diag.dir/timeline.cpp.o.d"
  "CMakeFiles/ms_diag.dir/viz3d.cpp.o"
  "CMakeFiles/ms_diag.dir/viz3d.cpp.o.d"
  "libms_diag.a"
  "libms_diag.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ms_diag.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
