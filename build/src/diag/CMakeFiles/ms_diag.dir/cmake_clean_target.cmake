file(REMOVE_RECURSE
  "libms_diag.a"
)
