file(REMOVE_RECURSE
  "libms_engine.a"
)
