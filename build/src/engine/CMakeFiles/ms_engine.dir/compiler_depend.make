# Empty compiler generated dependencies file for ms_engine.
# This may be replaced when dependencies are built.
