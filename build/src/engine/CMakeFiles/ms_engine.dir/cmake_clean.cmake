file(REMOVE_RECURSE
  "CMakeFiles/ms_engine.dir/job.cpp.o"
  "CMakeFiles/ms_engine.dir/job.cpp.o.d"
  "CMakeFiles/ms_engine.dir/perturb.cpp.o"
  "CMakeFiles/ms_engine.dir/perturb.cpp.o.d"
  "libms_engine.a"
  "libms_engine.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ms_engine.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
