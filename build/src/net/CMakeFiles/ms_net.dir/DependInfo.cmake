
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/net/ccsim.cpp" "src/net/CMakeFiles/ms_net.dir/ccsim.cpp.o" "gcc" "src/net/CMakeFiles/ms_net.dir/ccsim.cpp.o.d"
  "/root/repo/src/net/ccsim_multi.cpp" "src/net/CMakeFiles/ms_net.dir/ccsim_multi.cpp.o" "gcc" "src/net/CMakeFiles/ms_net.dir/ccsim_multi.cpp.o.d"
  "/root/repo/src/net/ecmp.cpp" "src/net/CMakeFiles/ms_net.dir/ecmp.cpp.o" "gcc" "src/net/CMakeFiles/ms_net.dir/ecmp.cpp.o.d"
  "/root/repo/src/net/flap.cpp" "src/net/CMakeFiles/ms_net.dir/flap.cpp.o" "gcc" "src/net/CMakeFiles/ms_net.dir/flap.cpp.o.d"
  "/root/repo/src/net/flowsim.cpp" "src/net/CMakeFiles/ms_net.dir/flowsim.cpp.o" "gcc" "src/net/CMakeFiles/ms_net.dir/flowsim.cpp.o.d"
  "/root/repo/src/net/topology.cpp" "src/net/CMakeFiles/ms_net.dir/topology.cpp.o" "gcc" "src/net/CMakeFiles/ms_net.dir/topology.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/ms_core.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
