file(REMOVE_RECURSE
  "CMakeFiles/ms_net.dir/ccsim.cpp.o"
  "CMakeFiles/ms_net.dir/ccsim.cpp.o.d"
  "CMakeFiles/ms_net.dir/ccsim_multi.cpp.o"
  "CMakeFiles/ms_net.dir/ccsim_multi.cpp.o.d"
  "CMakeFiles/ms_net.dir/ecmp.cpp.o"
  "CMakeFiles/ms_net.dir/ecmp.cpp.o.d"
  "CMakeFiles/ms_net.dir/flap.cpp.o"
  "CMakeFiles/ms_net.dir/flap.cpp.o.d"
  "CMakeFiles/ms_net.dir/flowsim.cpp.o"
  "CMakeFiles/ms_net.dir/flowsim.cpp.o.d"
  "CMakeFiles/ms_net.dir/topology.cpp.o"
  "CMakeFiles/ms_net.dir/topology.cpp.o.d"
  "libms_net.a"
  "libms_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ms_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
