file(REMOVE_RECURSE
  "libms_collective.a"
)
