# Empty compiler generated dependencies file for ms_collective.
# This may be replaced when dependencies are built.
