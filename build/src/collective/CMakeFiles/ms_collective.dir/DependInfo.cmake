
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/collective/bootstrap.cpp" "src/collective/CMakeFiles/ms_collective.dir/bootstrap.cpp.o" "gcc" "src/collective/CMakeFiles/ms_collective.dir/bootstrap.cpp.o.d"
  "/root/repo/src/collective/comm.cpp" "src/collective/CMakeFiles/ms_collective.dir/comm.cpp.o" "gcc" "src/collective/CMakeFiles/ms_collective.dir/comm.cpp.o.d"
  "/root/repo/src/collective/kvstore.cpp" "src/collective/CMakeFiles/ms_collective.dir/kvstore.cpp.o" "gcc" "src/collective/CMakeFiles/ms_collective.dir/kvstore.cpp.o.d"
  "/root/repo/src/collective/plan.cpp" "src/collective/CMakeFiles/ms_collective.dir/plan.cpp.o" "gcc" "src/collective/CMakeFiles/ms_collective.dir/plan.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/ms_core.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/ms_net.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
