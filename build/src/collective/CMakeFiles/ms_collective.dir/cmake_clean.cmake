file(REMOVE_RECURSE
  "CMakeFiles/ms_collective.dir/bootstrap.cpp.o"
  "CMakeFiles/ms_collective.dir/bootstrap.cpp.o.d"
  "CMakeFiles/ms_collective.dir/comm.cpp.o"
  "CMakeFiles/ms_collective.dir/comm.cpp.o.d"
  "CMakeFiles/ms_collective.dir/kvstore.cpp.o"
  "CMakeFiles/ms_collective.dir/kvstore.cpp.o.d"
  "CMakeFiles/ms_collective.dir/plan.cpp.o"
  "CMakeFiles/ms_collective.dir/plan.cpp.o.d"
  "libms_collective.a"
  "libms_collective.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ms_collective.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
