# Empty compiler generated dependencies file for ms_data.
# This may be replaced when dependencies are built.
