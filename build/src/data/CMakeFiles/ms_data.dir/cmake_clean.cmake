file(REMOVE_RECURSE
  "CMakeFiles/ms_data.dir/pipeline.cpp.o"
  "CMakeFiles/ms_data.dir/pipeline.cpp.o.d"
  "CMakeFiles/ms_data.dir/shm.cpp.o"
  "CMakeFiles/ms_data.dir/shm.cpp.o.d"
  "libms_data.a"
  "libms_data.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ms_data.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
