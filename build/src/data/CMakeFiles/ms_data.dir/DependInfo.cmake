
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/data/pipeline.cpp" "src/data/CMakeFiles/ms_data.dir/pipeline.cpp.o" "gcc" "src/data/CMakeFiles/ms_data.dir/pipeline.cpp.o.d"
  "/root/repo/src/data/shm.cpp" "src/data/CMakeFiles/ms_data.dir/shm.cpp.o" "gcc" "src/data/CMakeFiles/ms_data.dir/shm.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/ms_core.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
