file(REMOVE_RECURSE
  "libms_data.a"
)
