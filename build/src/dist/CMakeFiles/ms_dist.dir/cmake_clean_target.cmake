file(REMOVE_RECURSE
  "libms_dist.a"
)
