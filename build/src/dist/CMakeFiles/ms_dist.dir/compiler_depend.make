# Empty compiler generated dependencies file for ms_dist.
# This may be replaced when dependencies are built.
