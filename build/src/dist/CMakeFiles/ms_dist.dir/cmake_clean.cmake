file(REMOVE_RECURSE
  "CMakeFiles/ms_dist.dir/collectives.cpp.o"
  "CMakeFiles/ms_dist.dir/collectives.cpp.o.d"
  "CMakeFiles/ms_dist.dir/data_parallel.cpp.o"
  "CMakeFiles/ms_dist.dir/data_parallel.cpp.o.d"
  "CMakeFiles/ms_dist.dir/tensor_parallel.cpp.o"
  "CMakeFiles/ms_dist.dir/tensor_parallel.cpp.o.d"
  "libms_dist.a"
  "libms_dist.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ms_dist.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
