# Empty dependencies file for ms_parallel.
# This may be replaced when dependencies are built.
