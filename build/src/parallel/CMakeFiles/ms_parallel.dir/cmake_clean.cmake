file(REMOVE_RECURSE
  "CMakeFiles/ms_parallel.dir/mapping.cpp.o"
  "CMakeFiles/ms_parallel.dir/mapping.cpp.o.d"
  "CMakeFiles/ms_parallel.dir/pipeline.cpp.o"
  "CMakeFiles/ms_parallel.dir/pipeline.cpp.o.d"
  "libms_parallel.a"
  "libms_parallel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ms_parallel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
