file(REMOVE_RECURSE
  "libms_parallel.a"
)
