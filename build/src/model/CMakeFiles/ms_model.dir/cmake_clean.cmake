file(REMOVE_RECURSE
  "CMakeFiles/ms_model.dir/memory.cpp.o"
  "CMakeFiles/ms_model.dir/memory.cpp.o.d"
  "CMakeFiles/ms_model.dir/ops.cpp.o"
  "CMakeFiles/ms_model.dir/ops.cpp.o.d"
  "CMakeFiles/ms_model.dir/transformer.cpp.o"
  "CMakeFiles/ms_model.dir/transformer.cpp.o.d"
  "libms_model.a"
  "libms_model.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ms_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
