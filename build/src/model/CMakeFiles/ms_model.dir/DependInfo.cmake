
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/model/memory.cpp" "src/model/CMakeFiles/ms_model.dir/memory.cpp.o" "gcc" "src/model/CMakeFiles/ms_model.dir/memory.cpp.o.d"
  "/root/repo/src/model/ops.cpp" "src/model/CMakeFiles/ms_model.dir/ops.cpp.o" "gcc" "src/model/CMakeFiles/ms_model.dir/ops.cpp.o.d"
  "/root/repo/src/model/transformer.cpp" "src/model/CMakeFiles/ms_model.dir/transformer.cpp.o" "gcc" "src/model/CMakeFiles/ms_model.dir/transformer.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/ms_core.dir/DependInfo.cmake"
  "/root/repo/build/src/collective/CMakeFiles/ms_collective.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/ms_net.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
