file(REMOVE_RECURSE
  "libms_model.a"
)
