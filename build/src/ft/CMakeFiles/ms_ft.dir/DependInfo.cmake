
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ft/checkpoint.cpp" "src/ft/CMakeFiles/ms_ft.dir/checkpoint.cpp.o" "gcc" "src/ft/CMakeFiles/ms_ft.dir/checkpoint.cpp.o.d"
  "/root/repo/src/ft/ckpt_writer.cpp" "src/ft/CMakeFiles/ms_ft.dir/ckpt_writer.cpp.o" "gcc" "src/ft/CMakeFiles/ms_ft.dir/ckpt_writer.cpp.o.d"
  "/root/repo/src/ft/diagnostics.cpp" "src/ft/CMakeFiles/ms_ft.dir/diagnostics.cpp.o" "gcc" "src/ft/CMakeFiles/ms_ft.dir/diagnostics.cpp.o.d"
  "/root/repo/src/ft/driver_sim.cpp" "src/ft/CMakeFiles/ms_ft.dir/driver_sim.cpp.o" "gcc" "src/ft/CMakeFiles/ms_ft.dir/driver_sim.cpp.o.d"
  "/root/repo/src/ft/faults.cpp" "src/ft/CMakeFiles/ms_ft.dir/faults.cpp.o" "gcc" "src/ft/CMakeFiles/ms_ft.dir/faults.cpp.o.d"
  "/root/repo/src/ft/monitor.cpp" "src/ft/CMakeFiles/ms_ft.dir/monitor.cpp.o" "gcc" "src/ft/CMakeFiles/ms_ft.dir/monitor.cpp.o.d"
  "/root/repo/src/ft/workflow.cpp" "src/ft/CMakeFiles/ms_ft.dir/workflow.cpp.o" "gcc" "src/ft/CMakeFiles/ms_ft.dir/workflow.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/ms_core.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/ms_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
