file(REMOVE_RECURSE
  "libms_ft.a"
)
