file(REMOVE_RECURSE
  "CMakeFiles/ms_ft.dir/checkpoint.cpp.o"
  "CMakeFiles/ms_ft.dir/checkpoint.cpp.o.d"
  "CMakeFiles/ms_ft.dir/ckpt_writer.cpp.o"
  "CMakeFiles/ms_ft.dir/ckpt_writer.cpp.o.d"
  "CMakeFiles/ms_ft.dir/diagnostics.cpp.o"
  "CMakeFiles/ms_ft.dir/diagnostics.cpp.o.d"
  "CMakeFiles/ms_ft.dir/driver_sim.cpp.o"
  "CMakeFiles/ms_ft.dir/driver_sim.cpp.o.d"
  "CMakeFiles/ms_ft.dir/faults.cpp.o"
  "CMakeFiles/ms_ft.dir/faults.cpp.o.d"
  "CMakeFiles/ms_ft.dir/monitor.cpp.o"
  "CMakeFiles/ms_ft.dir/monitor.cpp.o.d"
  "CMakeFiles/ms_ft.dir/workflow.cpp.o"
  "CMakeFiles/ms_ft.dir/workflow.cpp.o.d"
  "libms_ft.a"
  "libms_ft.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ms_ft.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
