# Empty dependencies file for straggler_hunt.
# This may be replaced when dependencies are built.
