file(REMOVE_RECURSE
  "../examples/straggler_hunt"
  "../examples/straggler_hunt.pdb"
  "CMakeFiles/straggler_hunt.dir/straggler_hunt.cpp.o"
  "CMakeFiles/straggler_hunt.dir/straggler_hunt.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/straggler_hunt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
