# Empty dependencies file for distributed_correctness.
# This may be replaced when dependencies are built.
