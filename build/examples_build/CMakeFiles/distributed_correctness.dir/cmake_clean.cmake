file(REMOVE_RECURSE
  "../examples/distributed_correctness"
  "../examples/distributed_correctness.pdb"
  "CMakeFiles/distributed_correctness.dir/distributed_correctness.cpp.o"
  "CMakeFiles/distributed_correctness.dir/distributed_correctness.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/distributed_correctness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
