file(REMOVE_RECURSE
  "../examples/production_training"
  "../examples/production_training.pdb"
  "CMakeFiles/production_training.dir/production_training.cpp.o"
  "CMakeFiles/production_training.dir/production_training.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/production_training.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
