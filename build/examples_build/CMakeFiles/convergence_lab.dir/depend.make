# Empty dependencies file for convergence_lab.
# This may be replaced when dependencies are built.
