file(REMOVE_RECURSE
  "../examples/convergence_lab"
  "../examples/convergence_lab.pdb"
  "CMakeFiles/convergence_lab.dir/convergence_lab.cpp.o"
  "CMakeFiles/convergence_lab.dir/convergence_lab.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/convergence_lab.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
