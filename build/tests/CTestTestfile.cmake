# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/core_test[1]_include.cmake")
include("/root/repo/build/tests/sim_test[1]_include.cmake")
include("/root/repo/build/tests/net_test[1]_include.cmake")
include("/root/repo/build/tests/collective_test[1]_include.cmake")
include("/root/repo/build/tests/model_test[1]_include.cmake")
include("/root/repo/build/tests/parallel_test[1]_include.cmake")
include("/root/repo/build/tests/engine_test[1]_include.cmake")
include("/root/repo/build/tests/data_test[1]_include.cmake")
include("/root/repo/build/tests/optim_test[1]_include.cmake")
include("/root/repo/build/tests/ft_test[1]_include.cmake")
include("/root/repo/build/tests/diag_test[1]_include.cmake")
include("/root/repo/build/tests/extensions_test[1]_include.cmake")
include("/root/repo/build/tests/extensions2_test[1]_include.cmake")
include("/root/repo/build/tests/property_test[1]_include.cmake")
include("/root/repo/build/tests/dist_test[1]_include.cmake")
include("/root/repo/build/tests/ckpt_writer_test[1]_include.cmake")
include("/root/repo/build/tests/integration_test[1]_include.cmake")
include("/root/repo/build/tests/ccsim_multi_test[1]_include.cmake")
include("/root/repo/build/tests/generate_test[1]_include.cmake")
include("/root/repo/build/tests/driver_sim_test[1]_include.cmake")
include("/root/repo/build/tests/extensions3_test[1]_include.cmake")
include("/root/repo/build/tests/misc_test[1]_include.cmake")
include("/root/repo/build/tests/crossval_test[1]_include.cmake")
include("/root/repo/build/tests/copytask_test[1]_include.cmake")
