file(REMOVE_RECURSE
  "CMakeFiles/crossval_test.dir/crossval_test.cpp.o"
  "CMakeFiles/crossval_test.dir/crossval_test.cpp.o.d"
  "crossval_test"
  "crossval_test.pdb"
  "crossval_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/crossval_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
