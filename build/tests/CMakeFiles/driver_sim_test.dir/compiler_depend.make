# Empty compiler generated dependencies file for driver_sim_test.
# This may be replaced when dependencies are built.
