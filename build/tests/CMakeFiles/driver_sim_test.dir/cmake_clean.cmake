file(REMOVE_RECURSE
  "CMakeFiles/driver_sim_test.dir/driver_sim_test.cpp.o"
  "CMakeFiles/driver_sim_test.dir/driver_sim_test.cpp.o.d"
  "driver_sim_test"
  "driver_sim_test.pdb"
  "driver_sim_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/driver_sim_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
