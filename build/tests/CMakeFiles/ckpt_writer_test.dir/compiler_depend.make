# Empty compiler generated dependencies file for ckpt_writer_test.
# This may be replaced when dependencies are built.
