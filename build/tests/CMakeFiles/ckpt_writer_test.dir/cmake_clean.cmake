file(REMOVE_RECURSE
  "CMakeFiles/ckpt_writer_test.dir/ckpt_writer_test.cpp.o"
  "CMakeFiles/ckpt_writer_test.dir/ckpt_writer_test.cpp.o.d"
  "ckpt_writer_test"
  "ckpt_writer_test.pdb"
  "ckpt_writer_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ckpt_writer_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
