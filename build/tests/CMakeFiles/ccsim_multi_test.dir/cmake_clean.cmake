file(REMOVE_RECURSE
  "CMakeFiles/ccsim_multi_test.dir/ccsim_multi_test.cpp.o"
  "CMakeFiles/ccsim_multi_test.dir/ccsim_multi_test.cpp.o.d"
  "ccsim_multi_test"
  "ccsim_multi_test.pdb"
  "ccsim_multi_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ccsim_multi_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
