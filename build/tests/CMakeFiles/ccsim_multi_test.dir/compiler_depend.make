# Empty compiler generated dependencies file for ccsim_multi_test.
# This may be replaced when dependencies are built.
