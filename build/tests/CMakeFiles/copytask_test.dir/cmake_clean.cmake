file(REMOVE_RECURSE
  "CMakeFiles/copytask_test.dir/copytask_test.cpp.o"
  "CMakeFiles/copytask_test.dir/copytask_test.cpp.o.d"
  "copytask_test"
  "copytask_test.pdb"
  "copytask_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/copytask_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
