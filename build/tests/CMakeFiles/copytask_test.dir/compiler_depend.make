# Empty compiler generated dependencies file for copytask_test.
# This may be replaced when dependencies are built.
