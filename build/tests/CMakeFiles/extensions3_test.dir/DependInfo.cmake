
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/extensions3_test.cpp" "tests/CMakeFiles/extensions3_test.dir/extensions3_test.cpp.o" "gcc" "tests/CMakeFiles/extensions3_test.dir/extensions3_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/engine/CMakeFiles/ms_engine.dir/DependInfo.cmake"
  "/root/repo/build/src/diag/CMakeFiles/ms_diag.dir/DependInfo.cmake"
  "/root/repo/build/src/optim/CMakeFiles/ms_optim.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/ms_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/parallel/CMakeFiles/ms_parallel.dir/DependInfo.cmake"
  "/root/repo/build/src/model/CMakeFiles/ms_model.dir/DependInfo.cmake"
  "/root/repo/build/src/collective/CMakeFiles/ms_collective.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/ms_net.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/ms_core.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
