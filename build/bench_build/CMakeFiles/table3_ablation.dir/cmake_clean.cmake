file(REMOVE_RECURSE
  "../bench/table3_ablation"
  "../bench/table3_ablation.pdb"
  "CMakeFiles/table3_ablation.dir/table3_ablation.cpp.o"
  "CMakeFiles/table3_ablation.dir/table3_ablation.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table3_ablation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
