file(REMOVE_RECURSE
  "../bench/sec5_observability"
  "../bench/sec5_observability.pdb"
  "CMakeFiles/sec5_observability.dir/sec5_observability.cpp.o"
  "CMakeFiles/sec5_observability.dir/sec5_observability.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sec5_observability.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
