# Empty compiler generated dependencies file for sec5_observability.
# This may be replaced when dependencies are built.
