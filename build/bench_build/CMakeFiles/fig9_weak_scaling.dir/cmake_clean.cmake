file(REMOVE_RECURSE
  "../bench/fig9_weak_scaling"
  "../bench/fig9_weak_scaling.pdb"
  "CMakeFiles/fig9_weak_scaling.dir/fig9_weak_scaling.cpp.o"
  "CMakeFiles/fig9_weak_scaling.dir/fig9_weak_scaling.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig9_weak_scaling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
