# Empty dependencies file for fig9_weak_scaling.
# This may be replaced when dependencies are built.
