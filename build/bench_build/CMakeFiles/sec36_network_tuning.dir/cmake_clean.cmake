file(REMOVE_RECURSE
  "../bench/sec36_network_tuning"
  "../bench/sec36_network_tuning.pdb"
  "CMakeFiles/sec36_network_tuning.dir/sec36_network_tuning.cpp.o"
  "CMakeFiles/sec36_network_tuning.dir/sec36_network_tuning.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sec36_network_tuning.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
