# Empty dependencies file for sec36_network_tuning.
# This may be replaced when dependencies are built.
