file(REMOVE_RECURSE
  "../bench/micro_operators"
  "../bench/micro_operators.pdb"
  "CMakeFiles/micro_operators.dir/micro_operators.cpp.o"
  "CMakeFiles/micro_operators.dir/micro_operators.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_operators.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
