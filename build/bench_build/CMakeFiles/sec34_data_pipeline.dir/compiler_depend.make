# Empty compiler generated dependencies file for sec34_data_pipeline.
# This may be replaced when dependencies are built.
