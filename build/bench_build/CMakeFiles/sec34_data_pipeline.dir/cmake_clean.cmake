file(REMOVE_RECURSE
  "../bench/sec34_data_pipeline"
  "../bench/sec34_data_pipeline.pdb"
  "CMakeFiles/sec34_data_pipeline.dir/sec34_data_pipeline.cpp.o"
  "CMakeFiles/sec34_data_pipeline.dir/sec34_data_pipeline.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sec34_data_pipeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
