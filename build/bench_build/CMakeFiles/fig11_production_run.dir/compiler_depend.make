# Empty compiler generated dependencies file for fig11_production_run.
# This may be replaced when dependencies are built.
