file(REMOVE_RECURSE
  "../bench/fig11_production_run"
  "../bench/fig11_production_run.pdb"
  "CMakeFiles/fig11_production_run.dir/fig11_production_run.cpp.o"
  "CMakeFiles/fig11_production_run.dir/fig11_production_run.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig11_production_run.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
