file(REMOVE_RECURSE
  "../bench/micro_collectives"
  "../bench/micro_collectives.pdb"
  "CMakeFiles/micro_collectives.dir/micro_collectives.cpp.o"
  "CMakeFiles/micro_collectives.dir/micro_collectives.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_collectives.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
