file(REMOVE_RECURSE
  "../bench/fig6_fig12_stragglers"
  "../bench/fig6_fig12_stragglers.pdb"
  "CMakeFiles/fig6_fig12_stragglers.dir/fig6_fig12_stragglers.cpp.o"
  "CMakeFiles/fig6_fig12_stragglers.dir/fig6_fig12_stragglers.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6_fig12_stragglers.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
