# Empty dependencies file for fig6_fig12_stragglers.
# This may be replaced when dependencies are built.
