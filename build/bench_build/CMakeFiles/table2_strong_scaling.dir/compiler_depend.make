# Empty compiler generated dependencies file for table2_strong_scaling.
# This may be replaced when dependencies are built.
