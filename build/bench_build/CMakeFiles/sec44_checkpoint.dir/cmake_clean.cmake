file(REMOVE_RECURSE
  "../bench/sec44_checkpoint"
  "../bench/sec44_checkpoint.pdb"
  "CMakeFiles/sec44_checkpoint.dir/sec44_checkpoint.cpp.o"
  "CMakeFiles/sec44_checkpoint.dir/sec44_checkpoint.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sec44_checkpoint.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
