# Empty dependencies file for sec44_checkpoint.
# This may be replaced when dependencies are built.
