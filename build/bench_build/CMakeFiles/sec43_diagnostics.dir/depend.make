# Empty dependencies file for sec43_diagnostics.
# This may be replaced when dependencies are built.
