file(REMOVE_RECURSE
  "../bench/sec43_diagnostics"
  "../bench/sec43_diagnostics.pdb"
  "CMakeFiles/sec43_diagnostics.dir/sec43_diagnostics.cpp.o"
  "CMakeFiles/sec43_diagnostics.dir/sec43_diagnostics.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sec43_diagnostics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
