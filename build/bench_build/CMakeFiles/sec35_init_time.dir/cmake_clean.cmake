file(REMOVE_RECURSE
  "../bench/sec35_init_time"
  "../bench/sec35_init_time.pdb"
  "CMakeFiles/sec35_init_time.dir/sec35_init_time.cpp.o"
  "CMakeFiles/sec35_init_time.dir/sec35_init_time.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sec35_init_time.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
