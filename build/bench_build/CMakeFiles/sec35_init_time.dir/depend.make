# Empty dependencies file for sec35_init_time.
# This may be replaced when dependencies are built.
