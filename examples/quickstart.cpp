// Quickstart: simulate one training iteration of the 175B model on 1024
// GPUs, with and without the MegaScale optimizations.
//
// This walks the core public API:
//   1. pick a model architecture        (ms::model::ModelConfig)
//   2. pick a 3D-parallel layout        (ms::parallel::ParallelConfig)
//   3. pick operator + overlap options  (ms::model::OperatorProfile,
//                                        ms::engine::OverlapOptions)
//   4. simulate                         (ms::engine::simulate_iteration)
#include <cstdio>

#include "engine/job.h"

int main() {
  using namespace ms;

  // --- 1. architecture: GPT-3-scale, Table 1 preset ---
  engine::JobConfig job;
  job.model = model::config_175b();

  // --- 2. parallel layout: TP 8 (one node) x PP 8 x DP 16 = 1024 GPUs,
  //        interleaved pipeline with 6 virtual stages per worker ---
  job.par = parallel::ParallelConfig{.tp = 8, .pp = 8, .dp = 16, .vpp = 6};
  job.global_batch = 768;  // sequences per step (microbatch = 1 sequence)

  // --- 3a. the Megatron-LM baseline ---
  job.ops = model::OperatorProfile::megatron_baseline();
  job.overlap = engine::OverlapOptions::megatron_lm();
  const auto baseline = engine::simulate_iteration(job);

  // --- 3b. full MegaScale: parallel transformer block, sliding-window
  //         attention, FlashAttention-2 + fused kernels, and every
  //         communication-overlap technique from §3.2 ---
  job.model.parallel_block = true;
  job.model.attention = model::AttentionKind::kSlidingWindow;
  job.model.window = 512;
  job.ops = model::OperatorProfile::megascale();
  job.overlap = engine::OverlapOptions::megascale();
  const auto megascale = engine::simulate_iteration(job);

  // --- 4. results ---
  std::printf("175B model, %d GPUs, batch %d\n\n", job.gpus(),
              job.global_batch);
  auto show = [](const char* name, const engine::IterationResult& r) {
    std::printf("%-12s iteration %-9s  %7.1fk tokens/s  MFU %.1f%%  "
                "(%.0f PFLOP/s aggregate)\n",
                name, format_duration(r.iteration_time).c_str(),
                r.tokens_per_second / 1e3, r.mfu * 100.0, r.aggregate_pflops);
  };
  show("Megatron-LM", baseline);
  show("MegaScale", megascale);
  std::printf("\nspeedup: %.2fx   (paper Table 2 @1024 GPUs: 1.32x)\n",
              static_cast<double>(baseline.iteration_time) /
                  static_cast<double>(megascale.iteration_time));

  std::printf("\ntime to train 300B tokens: %.1f days -> %.1f days\n",
              engine::training_days(300e9, baseline.tokens_per_second),
              engine::training_days(300e9, megascale.tokens_per_second));

  // Where the time went (MegaScale run):
  const auto& b = megascale.breakdown;
  std::printf("\nMegaScale breakdown: data %s | pipeline body %s | "
              "exposed DP comm %s | optimizer %s\n",
              format_duration(b.data_pipeline).c_str(),
              format_duration(b.pipeline_body).c_str(),
              format_duration(b.dp_exposed).c_str(),
              format_duration(b.optimizer).c_str());
  return 0;
}
