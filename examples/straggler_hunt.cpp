// Straggler hunt: the §5/§6.3 "computational stragglers" investigation,
// end to end.
//
//   1. a cluster sample hides two ~10%-slow machines;
//   2. the job's MFU comes out low and inconsistent (Figure 6 symptom);
//   3. the CUDA-event heat map localizes the slow machines (Figure 7);
//   4. after eviction, MFU recovers (the paper measured ~+0.7%).
#include <cstdio>

#include "diag/heatmap.h"
#include "engine/job.h"
#include "engine/perturb.h"

using namespace ms;
using namespace ms::engine;

int main() {
  // The job: 175B on 1024 GPUs (128 machines).
  JobConfig job;
  job.model = model::config_175b();
  job.model.parallel_block = true;
  job.par = parallel::ParallelConfig{.tp = 8, .pp = 8, .dp = 16, .vpp = 6};
  job.global_batch = 768;
  job.ops = model::OperatorProfile::megascale();
  job.overlap = OverlapOptions::megascale();
  const auto base = simulate_iteration(job);
  const int machines = job.gpus() / job.cluster.gpus_per_node;

  // 1. cluster sample with two hidden stragglers.
  Rng rng(2024);
  StragglerPopulation healthy;
  healthy.slow_fraction = 0.0;
  auto speeds = sample_machine_speeds(machines, healthy, rng);
  speeds[31] *= 1.09;
  speeds[77] *= 1.12;

  // 2. symptom: the whole job runs at the slowest replica's pace.
  const auto degraded = fold_stragglers(base, job, speeds);
  std::printf("nominal MFU %.1f%%  |  this run: %.1f%% (iteration %s)\n\n",
              base.mfu * 100.0, degraded.mfu * 100.0,
              format_duration(degraded.iteration_time).c_str());

  // 3. diagnosis: collect per-machine forward/backward latencies with the
  //    CUDA-event monitor and render the heat map.
  diag::PerformanceHeatmap heatmap;
  Rng noise(7);
  for (int m = 0; m < machines; ++m) {
    for (int step = 0; step < 25; ++step) {
      const double jitter = 1.0 + 0.003 * noise.normal();
      heatmap.add_sample(m, "fwd", 0.0104 * speeds[m] * jitter);
      heatmap.add_sample(m, "bwd", 0.0209 * speeds[m] * jitter);
    }
  }
  auto outliers = heatmap.outliers(0.05);
  std::printf("heat-map outliers (>5%% above median):");
  for (int m : outliers) std::printf(" machine %d", m);
  std::printf("\n(injected stragglers: machines 31 and 77)\n\n");

  // 4. fix: evict the flagged machines (replacements run at nominal speed).
  auto repaired = speeds;
  for (int m : outliers) repaired[static_cast<std::size_t>(m)] = 1.0;
  const auto recovered = fold_stragglers(base, job, repaired);
  std::printf("after eviction: MFU %.1f%%  (recovered %.1f points; paper "
              "§6.3 observed ~0.7%%)\n",
              recovered.mfu * 100.0,
              (recovered.mfu - degraded.mfu) * 100.0);
  return 0;
}
