// Convergence lab: train real (tiny) transformer language models with the
// from-scratch autograd substrate and compare optimizers and architecture
// variants — the workflow behind the paper's §6.2 microbenchmarks.
#include <cstdio>

#include "core/stats.h"
#include "core/table.h"
#include "optim/trainer.h"

using namespace ms;
using namespace ms::optim;

int main() {
  // A Markov-chain corpus: each token has 4 plausible successors, so a
  // competent model drives the loss toward the chain's conditional entropy.
  MarkovCorpus corpus(64, 4, /*seed=*/9);
  std::printf("=== convergence lab ===\ncorpus entropy floor: %.3f nats\n\n",
              corpus.entropy_per_token());

  TinyGptConfig cfg;
  cfg.vocab = 64;
  cfg.seq_len = 32;
  cfg.hidden = 48;
  cfg.heads = 4;
  cfg.layers = 2;
  cfg.ffn_hidden = 96;

  TrainConfig tc;
  tc.steps = 150;
  tc.batch_size = 4;
  tc.lr = 3e-3f;
  tc.record_every = 15;

  Table t({"variant", "params", "first loss", "final loss", "gap to floor"});
  std::vector<Series> curves;

  struct Variant {
    const char* name;
    bool parallel_block;
    int window;
    const char* optimizer;  // "adam" | "lamb" | "sgd"
  };
  const Variant variants[] = {
      {"serial block + Adam", false, 0, "adam"},
      {"parallel block + Adam", true, 0, "adam"},
      {"serial + SWA(8) + Adam", false, 8, "adam"},
      {"serial block + LAMB", false, 0, "lamb"},
      {"serial block + SGD", false, 0, "sgd"},
  };
  for (const auto& v : variants) {
    auto model_cfg = cfg;
    model_cfg.parallel_block = v.parallel_block;
    model_cfg.window = v.window;
    Rng init(123);  // same init seed across variants
    TinyGpt model(model_cfg, init);

    std::unique_ptr<Optimizer> opt;
    TrainConfig vtc = tc;
    if (std::string(v.optimizer) == "adam") {
      opt = std::make_unique<Adam>(model.parameters());
    } else if (std::string(v.optimizer) == "lamb") {
      opt = std::make_unique<Lamb>(model.parameters());
      vtc.lr = 1.2e-2f;  // LAMB's trust ratio wants a larger nominal step
    } else {
      opt = std::make_unique<Sgd>(model.parameters(), 0.9f);
      vtc.lr = 1e-1f;
    }
    Rng data(456);  // same data stream across variants
    const auto rec = train_lm(model, *opt, corpus, vtc, data);
    t.add_row({v.name, Table::fmt_int(model.parameter_count()),
               Table::fmt(rec.loss_vs_tokens.y.front(), 3),
               Table::fmt(rec.final_loss, 3),
               Table::fmt(rec.final_loss - corpus.entropy_per_token(), 3)});
    Series s = rec.loss_vs_tokens;
    s.name = v.name;
    curves.push_back(std::move(s));
  }
  t.print();
  std::printf("\n%s\n", ascii_chart(curves, 76, 16).c_str());
  std::printf(
      "takeaway (matches §6.2): the parallel transformer block and "
      "sliding-window attention land at the same loss as the baseline; "
      "optimizer choice changes the path but not the destination.\n");
  return 0;
}
