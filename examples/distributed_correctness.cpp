// Distributed correctness: prove the parallelization math on real numbers.
//
// Three demonstrations with the functional-parallelism module:
//   1. a ring all-reduce executed round-by-round over float buffers matches
//      the elementwise sum (the data-movement plan is correct);
//   2. a Megatron tensor-parallel MLP (column-parallel, shard-local GeLU,
//      row-parallel) is numerically identical to the serial MLP;
//   3. ZeRO-2 data parallelism — real reduce-scatter, sharded Adam, real
//      all-gather — tracks single-process full-batch training step by step.
#include <cmath>
#include <cstdio>

#include "dist/collectives.h"
#include "dist/data_parallel.h"
#include "dist/tensor_parallel.h"
#include "optim/trainer.h"

using namespace ms;
using namespace ms::dist;

int main() {
  std::printf("=== distributed correctness lab ===\n\n");

  // ---- 1. ring all-reduce on real data ----
  {
    constexpr int kRanks = 8;
    Rng rng(1);
    std::vector<Buffer> bufs(kRanks, Buffer(64));
    Buffer expected(64, 0.0f);
    for (auto& b : bufs) {
      for (std::size_t i = 0; i < b.size(); ++i) {
        b[i] = static_cast<float>(rng.normal());
        expected[i] += b[i];
      }
    }
    std::vector<Buffer*> ptrs;
    for (auto& b : bufs) ptrs.push_back(&b);
    ring_all_reduce_sum(ptrs);
    double worst = 0;
    for (const auto& b : bufs) {
      for (std::size_t i = 0; i < b.size(); ++i) {
        worst = std::max(worst, std::fabs(static_cast<double>(b[i]) - expected[i]));
      }
    }
    std::printf("1. ring all-reduce over %d ranks (2x(n-1) rounds executed "
                "on data): max error vs elementwise sum = %.2e\n\n",
                kRanks, worst);
  }

  // ---- 2. Megatron tensor-parallel MLP ----
  {
    Rng rng(2);
    const int h = 16, f = 64;
    auto w1 = optim::Tensor::randn({h, f}, rng, 0.5f, true);
    auto b1 = optim::Tensor::randn({f}, rng, 0.2f, true);
    auto w2 = optim::Tensor::randn({f, h}, rng, 0.5f, true);
    auto b2 = optim::Tensor::randn({h}, rng, 0.2f, true);
    auto x = optim::Tensor::randn({12, h}, rng, 0.5f);
    const auto serial = optim::add(
        optim::matmul(optim::gelu(optim::add(optim::matmul(x, w1), b1)), w2),
        b2);
    for (int shards : {2, 4, 8}) {
      TensorParallelMlp mlp(w1, b1, w2, b2, shards);
      const auto parallel = mlp.forward(x);
      double worst = 0;
      for (std::int64_t i = 0; i < serial.numel(); ++i) {
        worst = std::max(worst, std::fabs(static_cast<double>(parallel.data()[i]) -
                                          serial.data()[i]));
      }
      std::printf("2. tensor-parallel MLP, %d shards: max |Δ| vs serial = "
                  "%.2e  (one all-reduce, GeLU fully local)\n",
                  shards, worst);
    }
    std::printf("\n");
  }

  // ---- 3. ZeRO-2 DP vs single process ----
  {
    optim::TinyGptConfig cfg;
    cfg.vocab = 16;
    cfg.seq_len = 8;
    cfg.hidden = 16;
    cfg.heads = 2;
    cfg.layers = 1;
    cfg.ffn_hidden = 32;
    optim::MarkovCorpus corpus(16, 3, 3);

    Zero2DataParallel dp(cfg, 4, /*init_seed=*/42);
    Rng init(42);
    optim::TinyGpt reference(cfg, init);
    optim::Adam adam(reference.parameters());

    Rng data(5);
    std::printf("3. ZeRO-2 (4 replicas) vs single-process Adam, per step:\n");
    std::printf("   step | dp loss | ref loss | max param delta | replica sync\n");
    for (int step = 0; step < 5; ++step) {
      std::vector<std::vector<int>> batch;
      for (int i = 0; i < 8; ++i) {
        batch.push_back(corpus.sample_sequence(cfg.seq_len + 1, data));
      }
      const double dp_loss = dp.step(batch, 1e-3f);

      adam.zero_grad();
      double ref_loss = 0;
      for (const auto& seq : batch) {
        auto loss = optim::scale(reference.loss(seq), 1.0f / 8.0f);
        loss.backward();
        ref_loss += loss.item() * 8.0;
      }
      ref_loss /= 8.0;
      adam.step(1e-3f);

      const Buffer a = dp.flat_params(0);
      const Buffer b = flatten_params(adam.params(), 4);
      double worst = 0;
      for (std::size_t i = 0; i < b.size(); ++i) {
        worst = std::max(worst, std::fabs(static_cast<double>(a[i]) - b[i]));
      }
      std::printf("   %4d | %.5f | %.5f  | %.2e        | %.1e\n", step,
                  dp_loss, ref_loss, worst, dp.max_replica_divergence());
    }
    std::printf(
        "\nsame losses, same parameters: sharding the optimizer (ZeRO-2) "
        "changes where the math runs, not what it computes — the property "
        "that makes §2's reduce-scatter + all-gather decomposition safe.\n");
  }
  return 0;
}
