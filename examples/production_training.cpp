// Production training: run a multi-week 10k-GPU job through the fault-
// tolerance stack and compare operational policies.
//
// Demonstrates:
//   * fault injection with a production-like mix (ms::ft::draw_fault_schedule)
//   * the robust training workflow (ms::ft::run_robust_training)
//   * policy comparisons an SRE would actually make: checkpoint interval,
//     two-stage vs synchronous checkpointing, fast vs naive communicator
//     re-initialization.
#include <cstdio>

#include "core/table.h"
#include "ft/workflow.h"

using namespace ms;
using namespace ms::ft;

namespace {

RunReport run_policy(const WorkflowConfig& cfg, TimeNs duration,
                     std::uint64_t seed) {
  // Same fault schedule for every policy: only the response changes.
  Rng fault_rng(0xACE);
  auto faults = draw_fault_schedule(duration, hours(9.0), cfg.nodes,
                                    default_fault_mix(), fault_rng);
  Rng run_rng(seed);
  return run_robust_training(cfg, duration, faults, run_rng);
}

}  // namespace

int main() {
  const TimeNs duration = days(28.0);
  WorkflowConfig base;
  base.nodes = 1536;  // 12288 GPUs

  std::printf("=== production run: 12,288 GPUs for %d days ===\n\n",
              static_cast<int>(to_days(duration)));

  Table t({"policy", "restarts", "auto detect", "mean downtime",
           "lost progress", "effective time"});
  auto row = [&](const char* name, const WorkflowConfig& cfg) {
    const auto report = run_policy(cfg, duration, 0x77);
    t.add_row({name, Table::fmt_int(report.restarts),
               Table::fmt_pct(report.auto_detected_fraction),
               format_duration(report.mean_downtime),
               format_duration(report.lost_progress_total),
               Table::fmt_pct(report.effective_time_ratio)});
  };

  row("MegaScale defaults", base);

  WorkflowConfig sparse_ckpt = base;
  sparse_ckpt.checkpoint_interval = hours(4.0);
  row("checkpoint every 4h (vs 30min)", sparse_ckpt);

  WorkflowConfig sync_ckpt = base;
  sync_ckpt.two_stage_checkpoint = false;
  row("synchronous checkpoints", sync_ckpt);

  WorkflowConfig naive_read = base;
  naive_read.group_leader_recovery = false;
  row("recovery without leader reads", naive_read);

  WorkflowConfig naive_init = base;
  naive_init.reinit_time = seconds(1047.0);  // §3.5 TCPStore init
  row("naive communicator init (1047s)", naive_init);

  t.print();

  std::printf(
      "\nEvery row replays the SAME four weeks of faults; only the recovery "
      "machinery differs. The MegaScale defaults combine frequent two-stage "
      "checkpoints, group-leader recovery reads and <30s communicator init "
      "to stay above the paper's 90%% effective-training-time bar.\n");
  return 0;
}
