// Capacity planning: pick a 3D-parallel layout for a model on a given
// cluster by sweeping the configuration space with the iteration simulator.
//
// A downstream user's question: "I have 512 GPUs and want to train a 175B
// model with batch 512 — which (pp, vpp) and which optimizations matter?"
#include <cstdio>
#include <vector>

#include "core/table.h"
#include "engine/job.h"

using namespace ms;
using namespace ms::engine;

int main() {
  constexpr int kGpus = 512;
  constexpr int kBatch = 512;
  std::printf("=== capacity planning: 175B on %d GPUs, batch %d ===\n\n",
              kGpus, kBatch);

  Table t({"tp", "pp", "vpp", "dp", "microbatches", "iter", "MFU", "note"});
  struct Candidate {
    int pp, vpp;
  };
  // TP fixed at 8 (one NVLink node, the paper's rule). Feasible pp x vpp
  // splits of 96 layers where dp divides the batch and pp divides m.
  const std::vector<Candidate> candidates = {
      {2, 1}, {2, 6}, {4, 1}, {4, 6}, {8, 1}, {8, 2}, {8, 6}, {8, 12},
      {16, 1}, {16, 6},
  };
  double best_mfu = 0;
  Candidate best{};
  for (const auto& c : candidates) {
    JobConfig job;
    job.model = model::config_175b();
    job.model.parallel_block = true;
    job.model.attention = model::AttentionKind::kSlidingWindow;
    job.model.window = 512;
    job.par = parallel::ParallelConfig{
        .tp = 8, .pp = c.pp, .dp = kGpus / (8 * c.pp), .vpp = c.vpp};
    job.global_batch = kBatch;
    job.ops = model::OperatorProfile::megascale();
    job.overlap = OverlapOptions::megascale();

    const std::string err = validate(job);
    if (!err.empty()) {
      t.add_row({"8", Table::fmt_int(c.pp), Table::fmt_int(c.vpp),
                 Table::fmt_int(kGpus / (8 * c.pp)), "-", "-", "-",
                 "infeasible: " + err});
      continue;
    }
    const auto r = simulate_iteration(job);
    t.add_row({"8", Table::fmt_int(c.pp), Table::fmt_int(c.vpp),
               Table::fmt_int(job.par.dp),
               Table::fmt_int(job.microbatches_per_replica()),
               format_duration(r.iteration_time), Table::fmt_pct(r.mfu), ""});
    if (r.mfu > best_mfu) {
      best_mfu = r.mfu;
      best = c;
    }
  }
  t.print();

  std::printf("\nbest layout: tp=8 pp=%d vpp=%d (MFU %.1f%%)\n", best.pp,
              best.vpp, best_mfu * 100.0);
  std::printf(
      "deeper pipelines shrink DP collectives but grow the bubble; "
      "interleaving (vpp) buys the bubble back at the price of more "
      "frequent pipeline communication — the simulator quantifies the "
      "trade so you don't burn cluster-days finding it empirically.\n");
  return 0;
}
