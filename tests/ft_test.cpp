#include <gtest/gtest.h>

#include <vector>

#include "ft/checkpoint.h"
#include "ft/diagnostics.h"
#include "ft/faults.h"
#include "ft/monitor.h"
#include "ft/workflow.h"
#include "support/builders.h"

namespace ms::ft {
namespace {

// ------------------------------------------------------------ checkpoint

TEST(Checkpoint, TwoStageStallIsSeconds) {
  CheckpointSpec spec;  // 175B-at-12288-GPUs defaults
  const TimeNs stall = checkpoint_stall(spec, /*two_stage=*/true);
  // §4.4: "this process can be reduced to several seconds".
  EXPECT_LT(stall, seconds(2.0));
  EXPECT_GT(stall, milliseconds(50.0));
}

TEST(Checkpoint, SynchronousStallIsMinutes) {
  CheckpointSpec spec;
  const TimeNs sync_stall = checkpoint_stall(spec, /*two_stage=*/false);
  const TimeNs two_stage = checkpoint_stall(spec, true);
  EXPECT_GT(sync_stall, 20 * two_stage);
}

TEST(Checkpoint, GroupLeaderReadCutsRecoveryByDpFactor) {
  CheckpointSpec spec;
  const TimeNs naive = recovery_read_time(spec, false);
  const TimeNs optimized = recovery_read_time(spec, true);
  // Parameter reads shrink by ~dp; total improvement is large.
  EXPECT_GT(naive, 5 * optimized);
  // And the optimized path fits the paper's <15 min recovery budget.
  EXPECT_LT(optimized, minutes(15.0));
}

TEST(Checkpoint, UniqueBytesCountParamsOncePerDpGroup) {
  CheckpointSpec spec;
  spec.total_gpus = 64;
  spec.dp = 4;
  spec.param_bytes_per_gpu = 100;
  spec.optimizer_bytes_per_gpu = 10;
  EXPECT_EQ(spec.unique_bytes(), 100 * 16 + 10 * 64);
}

TEST(Checkpoint, ExpectedLossIsHalfInterval) {
  EXPECT_EQ(expected_lost_progress(minutes(30.0)), minutes(15.0));
}

// ---------------------------------------------------------------- faults

TEST(Faults, SignaturesAreConsistent) {
  // Explicit-error faults have log keywords; silent ones do not.
  EXPECT_TRUE(fault_signature(FaultType::kCudaError).explicit_error);
  EXPECT_STREQ(fault_signature(FaultType::kCudaError).log_keyword,
               "CUDA error");
  EXPECT_TRUE(fault_signature(FaultType::kGpuHang).stops_heartbeat);
  EXPECT_FALSE(fault_signature(FaultType::kSlowGpu).explicit_error);
  EXPECT_LT(fault_signature(FaultType::kSlowGpu).diagnostic_detection, 0.2);
}

TEST(Faults, ScheduleRespectsMtbf) {
  Rng rng(1);
  const TimeNs duration = days(10.0);
  auto events = draw_fault_schedule(duration, hours(6.0), 100,
                                    default_fault_mix(), rng);
  // ~40 expected events.
  EXPECT_GT(events.size(), 20u);
  EXPECT_LT(events.size(), 70u);
  TimeNs prev = 0;
  for (const auto& ev : events) {
    EXPECT_GE(ev.at, prev);
    EXPECT_LT(ev.at, duration);
    EXPECT_GE(ev.node, 0);
    EXPECT_LT(ev.node, 100);
    prev = ev.at;
  }
}

TEST(Faults, MixWeightsRoughlyHonored) {
  Rng rng(2);
  auto events = draw_fault_schedule(days(1000.0), hours(1.0), 10,
                                    default_fault_mix(), rng);
  int cuda = 0;
  for (const auto& ev : events) {
    if (ev.type == FaultType::kCudaError) ++cuda;
  }
  EXPECT_NEAR(static_cast<double>(cuda) / static_cast<double>(events.size()),
              0.36, 0.05);
}

// ------------------------------------------------------------ diagnostics

TEST(Diagnostics, SuiteSensitivityMatchesSignature) {
  Rng rng(3);
  for (FaultType type :
       {FaultType::kCudaError, FaultType::kEccError, FaultType::kNicFlap,
        FaultType::kGpuHang, FaultType::kSlowGpu}) {
    int flagged = 0;
    constexpr int kTrials = 4000;
    for (int i = 0; i < kTrials; ++i) {
      SuiteConfig cfg;
      cfg.false_positive_rate = 0.0;
      if (run_diagnostic_suite({true, type}, cfg, rng).node_flagged) ++flagged;
    }
    const double measured = static_cast<double>(flagged) / kTrials;
    EXPECT_NEAR(measured, fault_signature(type).diagnostic_detection, 0.03)
        << fault_name(type);
  }
}

TEST(Diagnostics, HealthyNodeRarelyFlagged) {
  Rng rng(4);
  SuiteConfig cfg;  // default 0.2% per test
  int flagged = 0;
  for (int i = 0; i < 5000; ++i) {
    if (run_diagnostic_suite({false, FaultType::kCudaError}, cfg, rng)
            .node_flagged) {
      ++flagged;
    }
  }
  EXPECT_LT(flagged, 80);  // ~0.8% expected
}

TEST(Diagnostics, SuiteIsLightweight) {
  SuiteConfig cfg;
  // §4.3: detection + diagnostics within the 10-minute budget.
  EXPECT_LT(cfg.total_duration(), minutes(10.0));
}

TEST(Diagnostics, SensitivityMatrixShape) {
  // NCCL all-to-all is the broadest test; loopback is intra-host only.
  EXPECT_GT(test_sensitivity("nccl-all-to-all", FaultType::kCudaError), 0.5);
  EXPECT_DOUBLE_EQ(test_sensitivity("loopback", FaultType::kCudaError), 0.0);
  EXPECT_GT(test_sensitivity("rnic-to-rnic", FaultType::kNicFlap), 0.5);
}

// --------------------------------------------------------------- monitor

DetectorConfig detector_config() { return DetectorConfig{}; }

TEST(Monitor, ErrorStatusAlarmsImmediately) {
  AnomalyDetector det(detector_config());
  det.track(0, 0);
  Heartbeat hb{.node = 0, .at = seconds(10.0), .error_status = true,
               .rdma_gbps = 150};
  auto alarm = det.feed(hb);
  ASSERT_TRUE(alarm.has_value());
  EXPECT_EQ(alarm->kind, AlarmKind::kErrorStatus);
  EXPECT_FALSE(alarm->warning_only);
}

TEST(Monitor, LogKeywordDetected) {
  AnomalyDetector det(detector_config());
  det.track(0, 0);
  Heartbeat hb{.node = 0, .at = seconds(10.0), .error_status = false,
               .rdma_gbps = 150};
  hb.log_lines = {"iteration 100 loss 2.3", "CUDA error: device-side assert"};
  auto alarm = det.feed(hb);
  ASSERT_TRUE(alarm.has_value());
  EXPECT_EQ(alarm->kind, AlarmKind::kLogKeyword);
}

TEST(Monitor, RdmaSilenceAlarmsAfterBaseline) {
  AnomalyDetector det(detector_config());
  det.track(0, 0);
  for (int i = 1; i <= 3; ++i) {
    EXPECT_FALSE(det.feed({.node = 0, .at = i * seconds(10.0),
                           .rdma_gbps = 150}));
  }
  auto alarm = det.feed({.node = 0, .at = seconds(40.0), .rdma_gbps = 0.1});
  ASSERT_TRUE(alarm.has_value());
  EXPECT_EQ(alarm->kind, AlarmKind::kRdmaSilence);
  EXPECT_FALSE(alarm->warning_only);
}

TEST(Monitor, RdmaDeclineOnlyWarns) {
  AnomalyDetector det(detector_config());
  det.track(0, 0);
  for (int i = 1; i <= 3; ++i) {
    det.feed({.node = 0, .at = i * seconds(10.0), .rdma_gbps = 150});
  }
  auto alarm = det.feed({.node = 0, .at = seconds(40.0), .rdma_gbps = 60});
  ASSERT_TRUE(alarm.has_value());
  EXPECT_TRUE(alarm->warning_only);
}

TEST(Monitor, HealthyTrafficFluctuationIgnored) {
  AnomalyDetector det(detector_config());
  det.track(0, 0);
  for (int i = 1; i <= 10; ++i) {
    auto alarm = det.feed({.node = 0, .at = i * seconds(10.0),
                           .rdma_gbps = 140 + (i % 3) * 10.0});
    EXPECT_FALSE(alarm.has_value()) << "beat " << i;
  }
}

TEST(Monitor, TimeoutDetection) {
  AnomalyDetector det(detector_config());
  det.track(0, 0);
  det.track(1, 0);
  det.feed({.node = 0, .at = seconds(10.0), .rdma_gbps = 150});
  det.feed({.node = 1, .at = seconds(10.0), .rdma_gbps = 150});
  // Node 1 goes quiet; node 0 keeps beating.
  det.feed({.node = 0, .at = seconds(20.0), .rdma_gbps = 150});
  det.feed({.node = 0, .at = seconds(30.0), .rdma_gbps = 150});
  det.feed({.node = 0, .at = seconds(40.0), .rdma_gbps = 150});
  auto alarms = det.check_timeouts(seconds(50.0));
  ASSERT_EQ(alarms.size(), 1u);
  EXPECT_EQ(alarms[0].node, 1);
  EXPECT_EQ(alarms[0].kind, AlarmKind::kHeartbeatTimeout);
  // No duplicate alarms on the next sweep.
  EXPECT_TRUE(det.check_timeouts(seconds(60.0)).empty());
}

TEST(Monitor, SimultaneousTimeoutsAlarmInAscendingNodeOrder) {
  // Regression pin for a real nondeterminism bug: node state used to live
  // in an unordered_map, so one sweep timing out several nodes emitted
  // alarms in hash order — and alarm order feeds recovery scheduling,
  // flight-recorder sequence numbers and the driver-sim engine digest.
  // The ordered node map makes the sweep emit ascending node ids, always.
  AnomalyDetector det(detector_config());
  for (int node : {11, 3, 29, 7, 0, 17, 23, 5}) det.track(node, 0);
  const auto alarms = det.check_timeouts(seconds(60.0));
  ASSERT_EQ(alarms.size(), 8u);
  std::vector<int> order;
  for (const auto& alarm : alarms) {
    EXPECT_EQ(alarm.kind, AlarmKind::kHeartbeatTimeout);
    order.push_back(alarm.node);
  }
  EXPECT_EQ(order, (std::vector<int>{0, 3, 5, 7, 11, 17, 23, 29}));
}

TEST(Monitor, HeartbeatExactlyAtTimeoutBoundaryDoesNotAlarm) {
  // The timeout rule is strict: `now - last_beat > timeout`, so a sweep
  // landing exactly on the boundary must stay silent and one tick past it
  // must fire.
  const auto cfg = detector_config();
  AnomalyDetector det(cfg);
  det.track(0, 0);
  const TimeNs beat_at = seconds(10.0);
  det.feed({.node = 0, .at = beat_at, .rdma_gbps = 150});
  EXPECT_TRUE(det.check_timeouts(beat_at + cfg.heartbeat_timeout).empty());
  auto alarms = det.check_timeouts(beat_at + cfg.heartbeat_timeout + 1);
  ASSERT_EQ(alarms.size(), 1u);
  EXPECT_EQ(alarms[0].kind, AlarmKind::kHeartbeatTimeout);
}

TEST(Monitor, RdmaBaselineWarmsUpBeforeFirstJudgment) {
  // A zero-traffic first beat must not alarm (there is nothing to compare
  // against yet) and must not seed the baseline — only healthy traffic does.
  AnomalyDetector det(detector_config());
  det.track(0, 0);
  EXPECT_FALSE(det.feed({.node = 0, .at = seconds(10.0), .rdma_gbps = 0}));
  // First healthy beat seeds the EWMA baseline.
  EXPECT_FALSE(det.feed({.node = 0, .at = seconds(20.0), .rdma_gbps = 150}));
  // With a positive baseline established, collapse is finally judged.
  auto alarm = det.feed({.node = 0, .at = seconds(30.0), .rdma_gbps = 0});
  ASSERT_TRUE(alarm.has_value());
  EXPECT_EQ(alarm->kind, AlarmKind::kRdmaSilence);
}

TEST(Monitor, ColdStartDeadNodeStillAlarms) {
  // Regression found by the chaos campaign: a node whose NIC died before
  // the detector re-registered it (every recovery builds a fresh detector)
  // used to seed baseline = 0 and become permanently undetectable. Zero
  // traffic from the very first samples must alarm on its own.
  AnomalyDetector det(detector_config());
  det.track(0, 0);
  std::optional<Alarm> alarm;
  int beats = 0;
  while (!alarm && beats < 10) {
    ++beats;
    alarm = det.feed(
        {.node = 0, .at = seconds(10.0) * beats, .rdma_gbps = 0});
  }
  ASSERT_TRUE(alarm.has_value());
  EXPECT_EQ(alarm->kind, AlarmKind::kRdmaSilence);
  EXPECT_FALSE(alarm->warning_only);
  EXPECT_EQ(beats, DetectorConfig{}.cold_start_dead_beats);
}

TEST(Monitor, AlarmedNodeSuppressesReAlarms) {
  AnomalyDetector det(detector_config());
  det.track(0, 0);
  auto first = det.feed(
      {.node = 0, .at = seconds(10.0), .error_status = true, .rdma_gbps = 150});
  ASSERT_TRUE(first.has_value());
  // The node keeps reporting the error, but the driver already knows.
  auto repeat = det.feed(
      {.node = 0, .at = seconds(20.0), .error_status = true, .rdma_gbps = 150});
  EXPECT_FALSE(repeat.has_value());
  // The alarmed node is excluded from timeout sweeps too.
  EXPECT_TRUE(det.check_timeouts(seconds(500.0)).empty());
}

// -------------------------------------------------------------- workflow

using testsupport::small_workflow;

TEST(Workflow, DetectionLatencyByFaultClass) {
  Rng rng(5);
  const auto cfg = small_workflow();
  // Explicit errors: within one heartbeat interval.
  auto cuda = detect_fault(cfg, FaultType::kCudaError, rng);
  EXPECT_TRUE(cuda.automatic);
  EXPECT_LE(cuda.latency, cfg.detector.heartbeat_interval);
  // Hangs: bounded by timeout + interval.
  auto hang = detect_fault(cfg, FaultType::kGpuHang, rng);
  EXPECT_TRUE(hang.automatic);
  EXPECT_STREQ(hang.path, "heartbeat-timeout");
  EXPECT_LE(hang.latency,
            cfg.detector.heartbeat_timeout + 2 * cfg.detector.heartbeat_interval);
  // NIC flap: RDMA monitor.
  auto flap = detect_fault(cfg, FaultType::kNicFlap, rng);
  EXPECT_TRUE(flap.automatic);
  // Silent straggler: not automatic.
  auto slow = detect_fault(cfg, FaultType::kSlowGpu, rng);
  EXPECT_FALSE(slow.automatic);
  EXPECT_STREQ(slow.path, "perf-monitor");
}

TEST(Workflow, WeekLongRunMeetsPaperTargets) {
  Rng rng(6);
  auto cfg = small_workflow();
  const TimeNs duration = days(14.0);
  auto faults = draw_fault_schedule(duration, hours(8.0), cfg.nodes,
                                    default_fault_mix(), rng);
  auto report = run_robust_training(cfg, duration, faults, rng);
  EXPECT_GT(report.restarts, 10);
  // §6.3: >90% of faults auto-detected and recovered; >90% effective time.
  EXPECT_GT(report.auto_detected_fraction, 0.85);
  EXPECT_GT(report.effective_time_ratio, 0.90);
  // Detection + diagnosis well under 10 minutes for the automatic cases.
  EXPECT_LT(report.mean_detect_latency, minutes(10.0));
}

TEST(Workflow, NoFaultsMeansOnlyCheckpointOverhead) {
  Rng rng(7);
  auto cfg = small_workflow();
  auto report = run_robust_training(cfg, days(1.0), {}, rng);
  EXPECT_EQ(report.restarts, 0);
  EXPECT_EQ(report.downtime_total, 0);
  EXPECT_GT(report.checkpoints_taken, 40);  // every 30 min
  EXPECT_GT(report.effective_time_ratio, 0.99);
}

TEST(Workflow, MoreFrequentCheckpointsTradeStallForLoss) {
  Rng rng(8);
  auto cfg = small_workflow();
  const TimeNs duration = days(7.0);
  Rng fault_rng(9);
  auto faults = draw_fault_schedule(duration, hours(6.0), cfg.nodes,
                                    default_fault_mix(), fault_rng);
  cfg.checkpoint_interval = hours(4.0);
  Rng r1(10);
  auto sparse = run_robust_training(cfg, duration, faults, r1);
  cfg.checkpoint_interval = minutes(15.0);
  Rng r2(10);
  auto frequent = run_robust_training(cfg, duration, faults, r2);
  EXPECT_LT(frequent.lost_progress_total, sparse.lost_progress_total);
  EXPECT_GT(frequent.checkpoint_stall_total, sparse.checkpoint_stall_total);
  // With seconds-level stalls, frequent checkpointing wins overall.
  EXPECT_GT(frequent.effective_time_ratio, sparse.effective_time_ratio);
}

TEST(Workflow, SlowReinitHurtsEffectiveTime) {
  Rng fault_rng(11);
  auto cfg = small_workflow();
  const TimeNs duration = days(7.0);
  auto faults = draw_fault_schedule(duration, hours(4.0), cfg.nodes,
                                    default_fault_mix(), fault_rng);
  Rng r1(12);
  auto fast = run_robust_training(cfg, duration, faults, r1);
  cfg.reinit_time = seconds(1047.0);  // §3.5 naive TCPStore initialization
  Rng r2(12);
  auto slow = run_robust_training(cfg, duration, faults, r2);
  EXPECT_LT(slow.effective_time_ratio, fast.effective_time_ratio);
}

TEST(Workflow, IncidentAccountingConsistent) {
  Rng rng(13);
  auto cfg = small_workflow();
  const TimeNs duration = days(3.0);
  Rng fault_rng(14);
  auto faults = draw_fault_schedule(duration, hours(6.0), cfg.nodes,
                                    default_fault_mix(), fault_rng);
  auto report = run_robust_training(cfg, duration, faults, rng);
  TimeNs downtime = 0, lost = 0;
  for (const auto& i : report.incidents) {
    downtime += i.downtime;
    lost += i.lost_progress;
    EXPECT_LE(i.lost_progress, cfg.checkpoint_interval);
    EXPECT_GT(i.downtime, 0);
  }
  EXPECT_EQ(downtime, report.downtime_total);
  EXPECT_EQ(lost, report.lost_progress_total);
  EXPECT_EQ(report.restarts, static_cast<int>(report.incidents.size()));
}

}  // namespace
}  // namespace ms::ft
