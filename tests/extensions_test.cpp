// Tests for the design-choice extensions: GPipe vs 1F1B schedules, the
// per-GPU memory model, and ZeRO stage 1/2/3 communication trade-offs.
#include <gtest/gtest.h>

#include "engine/job.h"
#include "model/memory.h"
#include "parallel/pipeline.h"

namespace ms {
namespace {

using parallel::gpipe_schedule_for_stage;
using parallel::PassType;
using parallel::peak_inflight_microbatches;
using parallel::schedule_for_stage;

// ----------------------------------------------------------- schedules

TEST(Gpipe, AllForwardsThenAllBackwards) {
  auto sched = gpipe_schedule_for_stage(4, 1, 8);
  ASSERT_EQ(sched.size(), 16u);
  for (int i = 0; i < 8; ++i) {
    EXPECT_EQ(sched[static_cast<std::size_t>(i)].pass, PassType::kForward);
    EXPECT_EQ(sched[static_cast<std::size_t>(i)].microbatch, i);
  }
  for (int i = 8; i < 16; ++i) {
    EXPECT_EQ(sched[static_cast<std::size_t>(i)].pass, PassType::kBackward);
  }
}

TEST(Gpipe, BackwardDrainsInReverse) {
  auto sched = gpipe_schedule_for_stage(2, 0, 4);
  EXPECT_EQ(sched[4].microbatch, 3);  // first backward = freshest forward
  EXPECT_EQ(sched[7].microbatch, 0);
}

TEST(Inflight, GpipeKeepsAllMicrobatchesAlive) {
  EXPECT_EQ(peak_inflight_microbatches(gpipe_schedule_for_stage(4, 0, 32)),
            32);
}

TEST(Inflight, OneFOneBBoundedByDepth) {
  // Classic 1F1B stage 0 keeps ~pp microbatches alive regardless of m.
  const int pp = 8;
  for (int m : {16, 64, 256}) {
    const int peak =
        peak_inflight_microbatches(schedule_for_stage(pp, 0, 1, m));
    EXPECT_LE(peak, pp);
    EXPECT_GE(peak, pp - 1);
  }
}

TEST(Inflight, InterleavedSlightlyHigherThanClassic) {
  const int classic =
      peak_inflight_microbatches(schedule_for_stage(8, 0, 1, 64));
  const int interleaved =
      peak_inflight_microbatches(schedule_for_stage(8, 0, 6, 64));
  // Interleaving warms up more chunk-passes, but stays O(pp * vpp), far
  // below GPipe's O(m * vpp).
  EXPECT_GT(interleaved, classic);
  EXPECT_LT(interleaved, 64 * 6);
}

TEST(Inflight, LaterStagesHoldLess) {
  const int first = peak_inflight_microbatches(schedule_for_stage(8, 0, 1, 32));
  const int last = peak_inflight_microbatches(schedule_for_stage(8, 7, 1, 32));
  EXPECT_GT(first, last);
}

// --------------------------------------------------------------- memory

TEST(Memory, PaperLayoutFitsA100) {
  // 175B, tp8 pp8 vpp6, dp 192 (12288 GPUs), interleaved 1F1B.
  parallel::ParallelConfig par{.tp = 8, .pp = 8, .dp = 192, .vpp = 6};
  const int inflight = peak_inflight_microbatches(
      schedule_for_stage(par.pp, 0, par.vpp, 32 * par.pp / par.pp * 8));
  const auto breakdown =
      model::peak_memory(model::config_175b(), par, inflight);
  EXPECT_LT(breakdown.total(), 80e9);
  EXPECT_GT(breakdown.total(), 10e9);  // not trivially small either
}

TEST(Memory, GpipeBlowsUpAtLargeMicrobatchCounts) {
  parallel::ParallelConfig par{.tp = 8, .pp = 8, .dp = 4, .vpp = 1};
  const auto cfg = model::config_175b();
  const int gpipe_inflight =
      peak_inflight_microbatches(gpipe_schedule_for_stage(8, 0, 192));
  const int f1b_inflight =
      peak_inflight_microbatches(schedule_for_stage(8, 0, 1, 192));
  EXPECT_FALSE(model::fits_memory(cfg, par, gpipe_inflight));
  EXPECT_TRUE(model::fits_memory(cfg, par, f1b_inflight));
}

TEST(Memory, Zero3ShardsWeights) {
  parallel::ParallelConfig z2{.tp = 8, .pp = 8, .dp = 16, .vpp = 1,
                              .zero_stage = 2};
  parallel::ParallelConfig z3 = z2;
  z3.zero_stage = 3;
  const auto cfg = model::config_175b();
  EXPECT_LT(model::peak_memory(cfg, z3, 8).weights,
            model::peak_memory(cfg, z2, 8).weights);
  EXPECT_DOUBLE_EQ(model::peak_memory(cfg, z3, 8).weights,
                   model::peak_memory(cfg, z2, 8).weights / 16.0);
}

TEST(Memory, ZeroStageShrinksOptimizerAndGrads) {
  parallel::ParallelConfig z0{.tp = 8, .pp = 8, .dp = 16, .vpp = 1,
                              .zero_stage = 0};
  parallel::ParallelConfig z1 = z0;
  z1.zero_stage = 1;
  parallel::ParallelConfig z2 = z0;
  z2.zero_stage = 2;
  const auto cfg = model::config_175b();
  const auto m0 = model::peak_memory(cfg, z0, 8);
  const auto m1 = model::peak_memory(cfg, z1, 8);
  const auto m2 = model::peak_memory(cfg, z2, 8);
  EXPECT_LT(m1.optimizer, m0.optimizer);
  EXPECT_DOUBLE_EQ(m1.gradients, m0.gradients);
  EXPECT_LT(m2.gradients, m1.gradients);
}

TEST(Memory, ActivationsScaleWithInflight) {
  parallel::ParallelConfig par{.tp = 8, .pp = 8, .dp = 4, .vpp = 1};
  const auto cfg = model::config_175b();
  const auto low = model::peak_memory(cfg, par, 4);
  const auto high = model::peak_memory(cfg, par, 8);
  EXPECT_DOUBLE_EQ(high.activations, 2.0 * low.activations);
  EXPECT_DOUBLE_EQ(high.weights, low.weights);
}

TEST(Memory, TensorParallelDividesActivations) {
  parallel::ParallelConfig tp8{.tp = 8, .pp = 8, .dp = 4, .vpp = 1};
  parallel::ParallelConfig tp4{.tp = 4, .pp = 8, .dp = 4, .vpp = 1};
  const auto cfg = model::config_175b();
  EXPECT_LT(model::peak_memory(cfg, tp8, 8).activations,
            model::peak_memory(cfg, tp4, 8).activations);
}

// ------------------------------------------------------- engine + gpipe

engine::JobConfig schedule_config(engine::PipelineSchedule schedule) {
  engine::JobConfig cfg;
  cfg.model = model::config_175b();
  cfg.model.parallel_block = true;
  cfg.par = parallel::ParallelConfig{.tp = 8, .pp = 8, .dp = 4, .vpp = 1};
  cfg.global_batch = 256;
  cfg.ops = model::OperatorProfile::megascale();
  cfg.overlap = engine::OverlapOptions::megascale();
  cfg.schedule = schedule;
  return cfg;
}

TEST(EngineSchedule, GpipeAndOneFOneBSameBubbleDifferentMemory) {
  const auto gpipe =
      engine::simulate_iteration(schedule_config(engine::PipelineSchedule::kGpipe));
  const auto f1b = engine::simulate_iteration(
      schedule_config(engine::PipelineSchedule::kOneFOneB));
  // Equal compute volume: iteration times are within a few percent (the
  // bubble fraction is identical; only ordering differs).
  const double ratio = to_seconds(gpipe.iteration_time) /
                       to_seconds(f1b.iteration_time);
  EXPECT_NEAR(ratio, 1.0, 0.08);
}

TEST(EngineSchedule, GpipeRejectsInterleaving) {
  auto cfg = schedule_config(engine::PipelineSchedule::kGpipe);
  cfg.par.vpp = 2;
  EXPECT_NE(engine::validate(cfg), "");
}

TEST(EngineZero, Stage1CostsMoreCommThanStage2) {
  auto cfg = schedule_config(engine::PipelineSchedule::kOneFOneB);
  cfg.overlap = engine::OverlapOptions::megatron_lm();  // expose DP comm
  cfg.par.zero_stage = 2;
  const auto z2 = engine::simulate_iteration(cfg);
  cfg.par.zero_stage = 1;
  const auto z1 = engine::simulate_iteration(cfg);
  EXPECT_GT(z1.iteration_time, z2.iteration_time);
}

TEST(EngineZero, Stage3CostsMoreCommThanStage2) {
  auto cfg = schedule_config(engine::PipelineSchedule::kOneFOneB);
  cfg.overlap = engine::OverlapOptions::megatron_lm();
  cfg.par.zero_stage = 2;
  const auto z2 = engine::simulate_iteration(cfg);
  cfg.par.zero_stage = 3;
  const auto z3 = engine::simulate_iteration(cfg);
  EXPECT_GT(z3.iteration_time, z2.iteration_time);
}

}  // namespace
}  // namespace ms
