#include <gtest/gtest.h>

#include <cmath>
#include <functional>

#include "optim/autograd.h"
#include "optim/nn.h"
#include "optim/optimizers.h"
#include "optim/trainer.h"

namespace ms::optim {
namespace {

// Finite-difference gradient of make_loss w.r.t. leaf[idx]. make_loss must
// rebuild the graph from current leaf values.
double numeric_grad(Tensor& leaf, std::size_t idx,
                    const std::function<Tensor()>& make_loss,
                    float eps = 1e-3f) {
  const float orig = leaf.data()[idx];
  leaf.data()[idx] = orig + eps;
  const double lp = make_loss().item();
  leaf.data()[idx] = orig - eps;
  const double lm = make_loss().item();
  leaf.data()[idx] = orig;
  return (lp - lm) / (2.0 * eps);
}

// Checks every element of `leaf` against finite differences.
void check_grads(Tensor& leaf, const std::function<Tensor()>& make_loss,
                 double tol = 5e-2) {
  leaf.zero_grad();
  Tensor loss = make_loss();
  loss.backward();
  std::vector<float> analytic(leaf.grad(), leaf.grad() + leaf.numel());
  for (std::int64_t i = 0; i < leaf.numel(); ++i) {
    const double numeric =
        numeric_grad(leaf, static_cast<std::size_t>(i), make_loss);
    const double scale_ref =
        std::max({1.0, std::fabs(numeric), std::fabs(static_cast<double>(
                                               analytic[static_cast<std::size_t>(i)]))});
    EXPECT_NEAR(analytic[static_cast<std::size_t>(i)], numeric, tol * scale_ref)
        << "element " << i;
  }
}

// ---------------------------------------------------------------- basics

TEST(Autograd, TensorConstruction) {
  auto t = Tensor::zeros({2, 3});
  EXPECT_EQ(t.numel(), 6);
  EXPECT_EQ(t.shape(), (std::vector<int>{2, 3}));
  auto f = Tensor::full({2}, 3.5f);
  EXPECT_FLOAT_EQ(f.data()[0], 3.5f);
  auto v = Tensor::from({1, 2, 3}, {3});
  EXPECT_FLOAT_EQ(v.data()[2], 3.0f);
}

TEST(Autograd, SumAndBackward) {
  auto x = Tensor::from({1, 2, 3, 4}, {2, 2}, true);
  Tensor s = sum(x);
  EXPECT_FLOAT_EQ(s.item(), 10.0f);
  s.backward();
  for (int i = 0; i < 4; ++i) EXPECT_FLOAT_EQ(x.grad()[i], 1.0f);
}

TEST(Autograd, MatmulForwardKnownValues) {
  auto a = Tensor::from({1, 2, 3, 4}, {2, 2});
  auto b = Tensor::from({5, 6, 7, 8}, {2, 2});
  Tensor c = matmul(a, b);
  EXPECT_FLOAT_EQ(c.data()[0], 19.0f);
  EXPECT_FLOAT_EQ(c.data()[1], 22.0f);
  EXPECT_FLOAT_EQ(c.data()[2], 43.0f);
  EXPECT_FLOAT_EQ(c.data()[3], 50.0f);
}

TEST(Autograd, MatmulTransposesAgree) {
  Rng rng(1);
  auto a = Tensor::randn({3, 4}, rng, 1.0f);
  auto b = Tensor::randn({4, 2}, rng, 1.0f);
  // Build a^T stored as [4,3] and b^T stored as [2,4].
  std::vector<float> at(12), bt(8);
  for (int i = 0; i < 3; ++i)
    for (int j = 0; j < 4; ++j) at[static_cast<std::size_t>(j * 3 + i)] = a.data()[i * 4 + j];
  for (int i = 0; i < 4; ++i)
    for (int j = 0; j < 2; ++j) bt[static_cast<std::size_t>(j * 4 + i)] = b.data()[i * 2 + j];
  auto a_t = Tensor::from(std::move(at), {4, 3});
  auto b_t = Tensor::from(std::move(bt), {2, 4});

  Tensor plain = matmul(a, b);
  Tensor via_ta = matmul(a_t, b, /*trans_a=*/true);
  Tensor via_tb = matmul(a, b_t, false, /*trans_b=*/true);
  for (int i = 0; i < 6; ++i) {
    EXPECT_NEAR(plain.data()[i], via_ta.data()[i], 1e-5);
    EXPECT_NEAR(plain.data()[i], via_tb.data()[i], 1e-5);
  }
}

// ------------------------------------------------------- gradient checks

TEST(GradCheck, Matmul) {
  Rng rng(2);
  auto a = Tensor::randn({3, 4}, rng, 0.5f, true);
  auto b = Tensor::randn({4, 2}, rng, 0.5f, true);
  auto make_loss = [&] { return sum(matmul(a, b)); };
  check_grads(a, make_loss);
  check_grads(b, make_loss);
}

TEST(GradCheck, MatmulTransposed) {
  Rng rng(3);
  auto a = Tensor::randn({4, 3}, rng, 0.5f, true);  // used as a^T
  auto b = Tensor::randn({2, 4}, rng, 0.5f, true);  // used as b^T
  auto make_loss = [&] { return sum(matmul(a, b, true, true)); };
  check_grads(a, make_loss);
  check_grads(b, make_loss);
}

TEST(GradCheck, AddBroadcastBias) {
  Rng rng(4);
  auto x = Tensor::randn({3, 4}, rng, 0.5f, true);
  auto bias = Tensor::randn({4}, rng, 0.5f, true);
  // Square via mul to make the gradient non-trivial.
  auto make_loss = [&] {
    Tensor y = add(x, bias);
    return sum(mul(y, y));
  };
  check_grads(x, make_loss);
  check_grads(bias, make_loss);
}

TEST(GradCheck, MulAndScale) {
  Rng rng(5);
  auto a = Tensor::randn({2, 3}, rng, 0.5f, true);
  auto b = Tensor::randn({2, 3}, rng, 0.5f, true);
  auto make_loss = [&] { return sum(scale(mul(a, b), 2.5f)); };
  check_grads(a, make_loss);
  check_grads(b, make_loss);
}

TEST(GradCheck, Gelu) {
  Rng rng(6);
  auto x = Tensor::randn({2, 5}, rng, 1.0f, true);
  auto make_loss = [&] { return sum(gelu(x)); };
  check_grads(x, make_loss);
}

TEST(GradCheck, LayerNorm) {
  Rng rng(7);
  auto x = Tensor::randn({3, 6}, rng, 1.0f, true);
  auto gamma = Tensor::randn({6}, rng, 0.3f, true);
  auto beta = Tensor::randn({6}, rng, 0.3f, true);
  for (int i = 0; i < 6; ++i) gamma.data()[i] += 1.0f;
  auto make_loss = [&] {
    Tensor y = layernorm(x, gamma, beta);
    return sum(mul(y, y));
  };
  check_grads(x, make_loss, 8e-2);
  check_grads(gamma, make_loss);
  check_grads(beta, make_loss);
}

TEST(GradCheck, Embedding) {
  Rng rng(8);
  auto table = Tensor::randn({5, 3}, rng, 0.5f, true);
  const std::vector<int> ids{0, 2, 2, 4};
  auto make_loss = [&] {
    Tensor e = embedding(ids, table);
    return sum(mul(e, e));
  };
  check_grads(table, make_loss);
}

TEST(GradCheck, AttentionFull) {
  Rng rng(9);
  auto q = Tensor::randn({4, 6}, rng, 0.5f, true);
  auto k = Tensor::randn({4, 6}, rng, 0.5f, true);
  auto v = Tensor::randn({4, 6}, rng, 0.5f, true);
  auto make_loss = [&] {
    Tensor o = attention(q, k, v, /*heads=*/2);
    return sum(mul(o, o));
  };
  check_grads(q, make_loss, 8e-2);
  check_grads(k, make_loss, 8e-2);
  check_grads(v, make_loss, 8e-2);
}

TEST(GradCheck, AttentionSlidingWindow) {
  Rng rng(10);
  auto q = Tensor::randn({6, 4}, rng, 0.5f, true);
  auto k = Tensor::randn({6, 4}, rng, 0.5f, true);
  auto v = Tensor::randn({6, 4}, rng, 0.5f, true);
  auto make_loss = [&] {
    Tensor o = attention(q, k, v, /*heads=*/2, /*window=*/2);
    return sum(mul(o, o));
  };
  check_grads(q, make_loss, 8e-2);
  check_grads(v, make_loss, 8e-2);
}

TEST(GradCheck, CrossEntropy) {
  Rng rng(11);
  auto logits = Tensor::randn({3, 5}, rng, 1.0f, true);
  const std::vector<int> targets{1, 0, 4};
  auto make_loss = [&] { return cross_entropy(logits, targets); };
  check_grads(logits, make_loss);
}

// ----------------------------------------------------------- attention

TEST(Attention, CausalMaskRespected) {
  Rng rng(12);
  auto q = Tensor::randn({4, 4}, rng, 0.5f);
  auto k = Tensor::randn({4, 4}, rng, 0.5f);
  auto v = Tensor::randn({4, 4}, rng, 0.5f, true);
  Tensor out1 = attention(q, k, v, 2);
  // Perturb the FUTURE value row 3; outputs at positions 0..2 unchanged.
  v.data()[3 * 4 + 1] += 10.0f;
  Tensor out2 = attention(q, k, v, 2);
  for (int i = 0; i < 3 * 4; ++i) {
    EXPECT_FLOAT_EQ(out1.data()[i], out2.data()[i]);
  }
  // Position 3 must change.
  bool changed = false;
  for (int j = 0; j < 4; ++j) {
    changed |= out1.data()[3 * 4 + j] != out2.data()[3 * 4 + j];
  }
  EXPECT_TRUE(changed);
}

TEST(Attention, WindowLimitsReceptiveField) {
  Rng rng(13);
  const int T = 8;
  auto q = Tensor::randn({T, 4}, rng, 0.5f);
  auto k = Tensor::randn({T, 4}, rng, 0.5f);
  auto v = Tensor::randn({T, 4}, rng, 0.5f);
  Tensor out1 = attention(q, k, v, 2, /*window=*/3);
  // Perturb v at position 0; positions >= 3 cannot see it (i - j >= w).
  v.data()[1] += 10.0f;
  Tensor out2 = attention(q, k, v, 2, /*window=*/3);
  for (int i = 3; i < T; ++i) {
    for (int j = 0; j < 4; ++j) {
      EXPECT_FLOAT_EQ(out1.data()[i * 4 + j], out2.data()[i * 4 + j])
          << "position " << i;
    }
  }
  // Position 1 does see it.
  bool changed = false;
  for (int j = 0; j < 4; ++j) {
    changed |= out1.data()[1 * 4 + j] != out2.data()[1 * 4 + j];
  }
  EXPECT_TRUE(changed);
}

TEST(Attention, RowsSumToOneViaUniformValues) {
  // With all V rows equal, attention output equals that row regardless of
  // scores — a softmax-normalization sanity check.
  Rng rng(14);
  auto q = Tensor::randn({5, 4}, rng, 1.0f);
  auto k = Tensor::randn({5, 4}, rng, 1.0f);
  std::vector<float> same(5 * 4);
  for (int i = 0; i < 5; ++i) {
    for (int j = 0; j < 4; ++j) same[static_cast<std::size_t>(i * 4 + j)] = static_cast<float>(j);
  }
  auto v = Tensor::from(std::move(same), {5, 4});
  Tensor out = attention(q, k, v, 2);
  for (int i = 0; i < 5; ++i) {
    for (int j = 0; j < 4; ++j) {
      EXPECT_NEAR(out.data()[i * 4 + j], static_cast<float>(j), 1e-4);
    }
  }
}

TEST(CrossEntropy, UniformLogitsGiveLogV) {
  auto logits = Tensor::zeros({4, 10}, true);
  Tensor loss = cross_entropy(logits, {0, 3, 7, 9});
  EXPECT_NEAR(loss.item(), std::log(10.0), 1e-5);
}

// ----------------------------------------------------------------- model

TinyGptConfig tiny_config() {
  TinyGptConfig cfg;
  cfg.vocab = 32;
  cfg.seq_len = 16;
  cfg.hidden = 32;
  cfg.heads = 4;
  cfg.layers = 2;
  cfg.ffn_hidden = 64;
  return cfg;
}

TEST(TinyGpt, ParameterCountMatchesArchitecture) {
  Rng rng(15);
  TinyGpt model(tiny_config(), rng);
  const auto cfg = tiny_config();
  // embedding + pos + per-layer (2 LN + qkv + proj + fc1 + fc2) + final LN
  // + head.
  std::int64_t expected = 0;
  expected += static_cast<std::int64_t>(cfg.vocab) * cfg.hidden;
  expected += static_cast<std::int64_t>(cfg.seq_len) * cfg.hidden;
  const std::int64_t per_layer =
      2 * (2 * cfg.hidden) + (cfg.hidden * 3 * cfg.hidden + 3 * cfg.hidden) +
      (cfg.hidden * cfg.hidden + cfg.hidden) +
      (cfg.hidden * cfg.ffn_hidden + cfg.ffn_hidden) +
      (cfg.ffn_hidden * cfg.hidden + cfg.hidden);
  expected += cfg.layers * per_layer;
  expected += 2 * cfg.hidden;
  expected += static_cast<std::int64_t>(cfg.hidden) * cfg.vocab + cfg.vocab;
  EXPECT_EQ(model.parameter_count(), expected);
}

TEST(TinyGpt, ParallelBlockHasFewerParams) {
  Rng rng(16);
  auto serial_cfg = tiny_config();
  auto ptb_cfg = serial_cfg;
  ptb_cfg.parallel_block = true;
  TinyGpt serial(serial_cfg, rng);
  TinyGpt ptb(ptb_cfg, rng);
  // One LayerNorm fewer per block.
  EXPECT_EQ(serial.parameter_count() - ptb.parameter_count(),
            static_cast<std::int64_t>(serial_cfg.layers) * 2 * serial_cfg.hidden);
}

TEST(TinyGpt, ForwardIsCausal) {
  Rng rng(17);
  TinyGpt model(tiny_config(), rng);
  std::vector<int> tokens{1, 2, 3, 4, 5, 6, 7, 8};
  Tensor logits1 = model.forward(tokens);
  tokens[6] = 30;  // change a late token
  Tensor logits2 = model.forward(tokens);
  const int V = tiny_config().vocab;
  for (int t = 0; t < 6; ++t) {
    for (int j = 0; j < V; ++j) {
      EXPECT_FLOAT_EQ(logits1.data()[t * V + j], logits2.data()[t * V + j])
          << "position " << t;
    }
  }
}

TEST(TinyGpt, GradientsFlowToAllParameters) {
  Rng rng(18);
  TinyGpt model(tiny_config(), rng);
  Rng data_rng(19);
  MarkovCorpus corpus(32, 3, 20);
  auto tokens = corpus.sample_sequence(17, data_rng);
  Tensor loss = model.loss(tokens);
  loss.backward();
  for (auto& p : model.parameters()) {
    double norm = 0.0;
    for (std::int64_t i = 0; i < p.tensor.numel(); ++i) {
      norm += std::fabs(p.tensor.grad()[i]);
    }
    EXPECT_GT(norm, 0.0) << p.name << " received no gradient";
  }
}

// ------------------------------------------------------------ optimizers

TEST(Optimizers, SgdStepMatchesFormula) {
  auto w = Tensor::from({1.0f, 2.0f}, {2}, true);
  w.grad()[0] = 0.5f;
  w.grad()[1] = -1.0f;
  Sgd opt({{"w", w}});
  opt.step(0.1f);
  EXPECT_FLOAT_EQ(w.data()[0], 0.95f);
  EXPECT_FLOAT_EQ(w.data()[1], 2.1f);
}

TEST(Optimizers, AdamFirstStepIsLrSized) {
  auto w = Tensor::from({1.0f}, {1}, true);
  w.grad()[0] = 0.7f;  // any gradient: first Adam step ~ lr in magnitude
  Adam opt({{"w", w}});
  opt.step(0.01f);
  EXPECT_NEAR(w.data()[0], 1.0f - 0.01f, 1e-4);
}

TEST(Optimizers, ZeroGradClears) {
  auto w = Tensor::from({1.0f}, {1}, true);
  w.grad()[0] = 5.0f;
  Sgd opt({{"w", w}});
  opt.zero_grad();
  EXPECT_FLOAT_EQ(w.grad()[0], 0.0f);
}

TEST(Optimizers, AdamConvergesOnQuadratic) {
  // minimize (w - 3)^2
  auto w = Tensor::from({0.0f}, {1}, true);
  Adam opt({{"w", w}});
  for (int i = 0; i < 500; ++i) {
    opt.zero_grad();
    w.grad()[0] = 2.0f * (w.data()[0] - 3.0f);
    opt.step(0.05f);
  }
  EXPECT_NEAR(w.data()[0], 3.0f, 0.05f);
}

TEST(Optimizers, LambTrustRatioScalesUpdate) {
  // Two blocks with very different weight norms get different effective
  // steps under LAMB, identical under Adam.
  auto big = Tensor::from({100.0f, 100.0f}, {2}, true);
  auto small = Tensor::from({0.1f, 0.1f}, {2}, true);
  big.grad()[0] = big.grad()[1] = 1.0f;
  small.grad()[0] = small.grad()[1] = 1.0f;
  Lamb opt({{"big", big}, {"small", small}});
  opt.step(0.01f);
  const auto& trust = opt.last_trust_ratios();
  ASSERT_EQ(trust.size(), 2u);
  EXPECT_GT(trust[0], trust[1]);  // larger weights get larger trusted step
}

TEST(Optimizers, LambConvergesOnQuadratic) {
  auto w = Tensor::from({10.0f}, {1}, true);
  Lamb opt({{"w", w}});
  for (int i = 0; i < 800; ++i) {
    opt.zero_grad();
    w.grad()[0] = 2.0f * (w.data()[0] - 3.0f);
    opt.step(0.02f);
  }
  EXPECT_NEAR(w.data()[0], 3.0f, 0.2f);
}

// --------------------------------------------------------------- corpus

TEST(Corpus, SequencesContainValidTokens) {
  MarkovCorpus corpus(32, 3, 21);
  Rng rng(22);
  auto seq = corpus.sample_sequence(100, rng);
  EXPECT_EQ(seq.size(), 100u);
  for (int t : seq) {
    EXPECT_GE(t, 0);
    EXPECT_LT(t, 32);
  }
}

TEST(Corpus, EntropyBelowUniform) {
  MarkovCorpus corpus(32, 3, 23);
  EXPECT_GT(corpus.entropy_per_token(), 0.0);
  EXPECT_LT(corpus.entropy_per_token(), std::log(32.0));
}

TEST(Corpus, TransitionsFollowChain) {
  MarkovCorpus corpus(16, 2, 24);
  Rng rng(25);
  // With branching 2, each token is followed by at most 2 distinct tokens.
  std::vector<std::set<int>> successors(16);
  auto seq = corpus.sample_sequence(2000, rng);
  for (std::size_t i = 1; i < seq.size(); ++i) {
    successors[static_cast<std::size_t>(seq[i - 1])].insert(seq[i]);
  }
  for (const auto& s : successors) {
    EXPECT_LE(s.size(), 2u);
  }
}

// -------------------------------------------------------------- training

TEST(Training, LossDecreases) {
  Rng rng(26);
  auto cfg = tiny_config();
  TinyGpt model(cfg, rng);
  MarkovCorpus corpus(cfg.vocab, 3, 27);
  Adam opt(model.parameters());
  TrainConfig tc;
  tc.steps = 60;
  tc.batch_size = 4;
  tc.lr = 3e-3f;
  Rng data_rng(28);
  auto record = train_lm(model, opt, corpus, tc, data_rng);
  const double first = record.loss_vs_tokens.y.front();
  EXPECT_LT(record.final_loss, first - 0.5);
  // Should be heading toward the corpus entropy floor.
  EXPECT_LT(record.final_loss, std::log(32.0));
}

TEST(Training, ParallelBlockTrainsComparably) {
  auto cfg = tiny_config();
  MarkovCorpus corpus(cfg.vocab, 3, 29);
  TrainConfig tc;
  tc.steps = 60;
  tc.batch_size = 4;
  tc.lr = 3e-3f;

  Rng rng1(30);
  TinyGpt serial(cfg, rng1);
  Adam opt1(serial.parameters());
  Rng d1(31);
  auto serial_rec = train_lm(serial, opt1, corpus, tc, d1);

  auto ptb_cfg = cfg;
  ptb_cfg.parallel_block = true;
  Rng rng2(30);
  TinyGpt ptb(ptb_cfg, rng2);
  Adam opt2(ptb.parameters());
  Rng d2(31);
  auto ptb_rec = train_lm(ptb, opt2, corpus, tc, d2);

  // §6.2: comparable loss (generous tolerance at this tiny scale).
  EXPECT_NEAR(ptb_rec.final_loss, serial_rec.final_loss, 0.5);
}

TEST(Training, SlidingWindowTrainsComparably) {
  auto cfg = tiny_config();
  MarkovCorpus corpus(cfg.vocab, 3, 32);
  TrainConfig tc;
  tc.steps = 60;
  tc.batch_size = 4;
  tc.lr = 3e-3f;

  Rng rng1(33);
  TinyGpt full(cfg, rng1);
  Adam opt1(full.parameters());
  Rng d1(34);
  auto full_rec = train_lm(full, opt1, corpus, tc, d1);

  auto swa_cfg = cfg;
  swa_cfg.window = 4;  // order-1 chain: a short window suffices
  Rng rng2(33);
  TinyGpt swa(swa_cfg, rng2);
  Adam opt2(swa.parameters());
  Rng d2(34);
  auto swa_rec = train_lm(swa, opt2, corpus, tc, d2);

  EXPECT_NEAR(swa_rec.final_loss, full_rec.final_loss, 0.5);
}

TEST(Training, RecordTracksTokens) {
  Rng rng(35);
  auto cfg = tiny_config();
  TinyGpt model(cfg, rng);
  MarkovCorpus corpus(cfg.vocab, 3, 36);
  Sgd opt(model.parameters());
  TrainConfig tc;
  tc.steps = 10;
  tc.batch_size = 2;
  Rng data_rng(37);
  auto record = train_lm(model, opt, corpus, tc, data_rng);
  EXPECT_DOUBLE_EQ(record.tokens_consumed, 10.0 * 2 * cfg.seq_len);
  EXPECT_FALSE(record.loss_vs_tokens.x.empty());
}

// ------------------------------------------------------------ loss model

TEST(ScalingLaw, LossDecreasesWithTokens) {
  ScalingLawLoss law;
  const double early = law.loss_at(1e9);
  const double late = law.loss_at(1e12);
  EXPECT_GT(early, late);
  EXPECT_GT(late, 1.5);  // above the floor
}

TEST(ScalingLaw, DeterministicPerSeed) {
  ScalingLawLoss a(1.7, 12.0, 0.12, 1e9, 42);
  ScalingLawLoss b(1.7, 12.0, 0.12, 1e9, 42);
  for (double t : {1e9, 5e9, 2e10}) {
    EXPECT_DOUBLE_EQ(a.loss_at(t), b.loss_at(t));
  }
}

}  // namespace
}  // namespace ms::optim
