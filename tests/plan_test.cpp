// Parallelism-plan auto-tuner: the Table-2 rediscovery gauntlet.
//
// The paper hand-tuned one 3D configuration per cluster size (175B: TP 8,
// PP 8, vpp 6, DP = GPUs/64, batch 6144). These tests make the planner
// *rediscover* that point from nothing but the model, the cluster size and
// the software generation: at 6,144 and 12,288 GPUs the paper layout must
// win outright; at 3,072 it must be a simulated finalist within a few
// percent of the modeled optimum. Golden fixtures under tests/golden/plan/
// pin the winner, the ranked counts and the report digest per scale —
// regenerate after an intentional model change with
//   MS_UPDATE_GOLDEN=1 ./plan_test
#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "engine/job.h"
#include "model/transformer.h"
#include "plan/plan_cli.h"
#include "plan/planner.h"
#include "plan/space.h"

#ifndef MS_GOLDEN_DIR
#error "build must define MS_GOLDEN_DIR"
#endif

namespace ms {
namespace {

// The planning problem the paper's Table 2 solves by hand: 175B with the
// MegaScale software generation (PTB + SWA + fused ops + full overlap) on
// an H-series CLOS fabric, batch 6144. Mirrors bench/common.h's
// megascale_175b() so planner and bench price identical physics.
plan::PlanSpec table2_spec(int gpus) {
  plan::PlanSpec spec;
  spec.model = model::config_175b();
  spec.model.parallel_block = true;
  spec.model.attention = model::AttentionKind::kSlidingWindow;
  spec.model.window = 512;
  spec.gpus = gpus;
  spec.global_batch = 6144;
  spec.network_efficiency = plan::fabric_network_efficiency(gpus);
  return spec;
}

std::string paper_plan_name(int gpus) {
  return "tp8 pp8 dp" + std::to_string(gpus / 64) + " vpp6";
}

const plan::RankedPlan* find_plan(const plan::PlanReport& report,
                                  const std::string& name) {
  for (const auto& plan : report.plans) {
    if (plan::candidate_name(plan.cand) == name) return &plan;
  }
  return nullptr;
}

std::string digest_hex(const plan::PlanReport& report) {
  char buf[24];
  std::snprintf(buf, sizeof(buf), "0x%016llx",
                static_cast<unsigned long long>(report.digest()));
  return buf;
}

class Table2PlanSearch : public ::testing::TestWithParam<int> {};

// The headline claim: the auto-tuner rediscovers the paper's hand-tuned
// configuration. Outright at 6,144/12,288 GPUs; within 3% of the simulated
// optimum at 3,072 (where the bubble/DP trade genuinely favors pp 4 in our
// substrate, the paper config sits 0.5% behind).
TEST_P(Table2PlanSearch, RediscoversPaperConfig) {
  const int gpus = GetParam();
  const plan::PlanReport report = plan::search(table2_spec(gpus));
  ASSERT_FALSE(report.plans.empty());

  const auto& winner = report.best();
  ASSERT_TRUE(winner.simulated);

  const plan::RankedPlan* paper = find_plan(report, paper_plan_name(gpus));
  ASSERT_NE(paper, nullptr)
      << "paper config " << paper_plan_name(gpus) << " not even enumerated";
  EXPECT_TRUE(paper->simulated)
      << "paper config pruned before DES validation (analytic rank "
      << paper->analytic_rank << ")";
  ASSERT_GT(paper->sim_step, 0);

  const double gap = to_seconds(paper->sim_step) / to_seconds(winner.sim_step);
  EXPECT_LE(gap, 1.03) << "paper config " << paper_plan_name(gpus) << " is "
                       << (gap - 1.0) * 100.0 << "% behind "
                       << plan::candidate_name(winner.cand);
  if (gpus >= 6144) {
    EXPECT_EQ(plan::candidate_name(winner.cand), paper_plan_name(gpus))
        << "paper config should win outright at " << gpus << " GPUs";
  }
}

// Golden regression: winner, paper-config rank, space counts and the
// FNV-1a report digest are pinned per scale.
TEST_P(Table2PlanSearch, MatchesGoldenFixture) {
  const int gpus = GetParam();
  const plan::PlanReport report = plan::search(table2_spec(gpus));
  ASSERT_FALSE(report.plans.empty());

  int paper_rank = 0;
  for (std::size_t i = 0; i < report.plans.size(); ++i) {
    if (plan::candidate_name(report.plans[i].cand) == paper_plan_name(gpus)) {
      paper_rank = static_cast<int>(i) + 1;
      break;
    }
  }
  std::map<std::string, std::string> got;
  got["winner"] = plan::candidate_name(report.best().cand);
  got["paper"] = paper_plan_name(gpus);
  got["paper_rank"] = std::to_string(paper_rank);
  got["enumerated"] = std::to_string(report.enumerated);
  got["memory_rejected"] = std::to_string(report.memory_rejected);
  got["simulated"] = std::to_string(report.simulated);
  got["digest"] = digest_hex(report);

  const std::string path = std::string(MS_GOLDEN_DIR) + "/plan/table2_" +
                           std::to_string(gpus) + ".txt";
  if (std::getenv("MS_UPDATE_GOLDEN") != nullptr) {
    std::ofstream out(path);
    ASSERT_TRUE(out.good()) << "cannot write " << path;
    out << "# msplan Table-2 rediscovery pin, " << gpus << " GPUs. "
        << "Regenerate: MS_UPDATE_GOLDEN=1 ./plan_test\n";
    for (const auto& [key, value] : got) out << key << ": " << value << "\n";
    GTEST_SKIP() << "golden regenerated: " << path;
  }

  std::ifstream in(path);
  ASSERT_TRUE(in.good()) << "missing golden " << path
                         << " (run with MS_UPDATE_GOLDEN=1 to create)";
  std::map<std::string, std::string> want;
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty() || line[0] == '#') continue;
    const auto colon = line.find(": ");
    ASSERT_NE(colon, std::string::npos) << "unparseable golden line: " << line;
    want[line.substr(0, colon)] = line.substr(colon + 2);
  }
  EXPECT_EQ(got, want);
}

INSTANTIATE_TEST_SUITE_P(Table2, Table2PlanSearch,
                         ::testing::Values(3072, 6144, 12288),
                         [](const auto& info) {
                           return "gpus" + std::to_string(info.param);
                         });

// Report invariants: finalists first by ascending simulated step, pruned
// remainder after them by ascending analytic step.
TEST(PlanReport, FinalistsLeadAndBothSegmentsAreSorted) {
  const plan::PlanReport report = plan::search(table2_spec(3072));
  ASSERT_GE(report.plans.size(), static_cast<std::size_t>(report.simulated));
  for (std::size_t i = 0; i < report.plans.size(); ++i) {
    const bool is_finalist = i < static_cast<std::size_t>(report.simulated);
    EXPECT_EQ(report.plans[i].simulated, is_finalist) << "row " << i;
    if (i == 0) continue;
    const auto& prev = report.plans[i - 1];
    const auto& cur = report.plans[i];
    if (cur.simulated) {
      EXPECT_GE(cur.sim_step, prev.sim_step) << "row " << i;
    } else if (!prev.simulated) {
      EXPECT_GE(cur.analytic.step, prev.analytic.step) << "row " << i;
    }
  }
}

TEST(PlanReport, JsonlHeaderCarriesSpecAndDigest) {
  const plan::PlanReport report = plan::search(table2_spec(3072));
  const std::string jsonl = report.to_jsonl();
  std::istringstream lines(jsonl);
  std::string header;
  ASSERT_TRUE(std::getline(lines, header));
  EXPECT_NE(header.find("\"plan_search\""), std::string::npos);
  EXPECT_NE(header.find("\"gpus\":3072"), std::string::npos);
  EXPECT_NE(header.find(digest_hex(report)), std::string::npos);
  // One line per ranked plan after the header.
  std::size_t rows = 0;
  for (std::string l; std::getline(lines, l);) rows += !l.empty();
  EXPECT_EQ(rows, report.plans.size());
}

// ---------------------------------------------------------------- msplan CLI

int run_cli(const std::vector<std::string>& args, std::string* out_text,
            std::string* err_text) {
  std::ostringstream out, err;
  const int rc = plan::msplan_main(args, out, err);
  if (out_text) *out_text = out.str();
  if (err_text) *err_text = err.str();
  return rc;
}

TEST(MsplanCli, UnknownFlagFailsWithUsage) {
  std::string err;
  EXPECT_EQ(run_cli({"--bogus"}, nullptr, &err), 1);
  EXPECT_NE(err.find("usage: msplan"), std::string::npos);
}

TEST(MsplanCli, RequiresGpus) {
  std::string err;
  EXPECT_EQ(run_cli({"--model", "175b"}, nullptr, &err), 1);
  EXPECT_NE(err.find("--gpus"), std::string::npos);
}

TEST(MsplanCli, RejectsUnknownModelScheduleAndNetEff) {
  std::string err;
  EXPECT_EQ(run_cli({"--model", "9000b", "--gpus", "64"}, nullptr, &err), 1);
  EXPECT_NE(err.find("unknown model"), std::string::npos);
  EXPECT_EQ(run_cli({"--gpus", "64", "--schedule", "dfs"}, nullptr, &err), 1);
  EXPECT_EQ(run_cli({"--gpus", "64", "--net-eff", "1.5"}, nullptr, &err), 1);
  EXPECT_EQ(run_cli({"--gpus", "64", "--net-eff", "0"}, nullptr, &err), 1);
}

TEST(MsplanCli, InfeasibleSpaceIsAnError) {
  // 175B on 8 GPUs: every factorization blows the 80 GB budget.
  std::string out, err;
  EXPECT_EQ(run_cli({"--model", "175b", "--gpus", "8", "--batch", "8",
                     "--net-eff", "0.9"},
                    &out, &err),
            1);
  EXPECT_NE(err.find("no feasible plan"), std::string::npos);
}

TEST(MsplanCli, SmallSearchPrintsWinnerAndWritesJsonl) {
  const std::string json_path =
      ::testing::TempDir() + "/msplan_13b_plans.jsonl";
  std::string out, err;
  ASSERT_EQ(run_cli({"--model", "13b", "--gpus", "32", "--batch", "64",
                     "--top-k", "3", "--net-eff", "0.9", "--json", json_path},
                    &out, &err),
            0)
      << err;
  EXPECT_NE(out.find("winner: 13B gpus=32"), std::string::npos);
  const auto digest_at = out.find("digest: 0x");
  ASSERT_NE(digest_at, std::string::npos);
  const std::string digest = out.substr(digest_at + 8, 18);

  std::ifstream f(json_path);
  ASSERT_TRUE(f.good());
  std::stringstream buf;
  buf << f.rdbuf();
  EXPECT_NE(buf.str().find("\"plan_search\""), std::string::npos);
  EXPECT_NE(buf.str().find(digest), std::string::npos)
      << "stdout digest and JSONL digest must agree";
}

TEST(MsplanCli, BaselineGpipeAndNoSimVariantsRun) {
  std::string out, err;
  EXPECT_EQ(run_cli({"--model", "13b", "--gpus", "16", "--batch", "32",
                     "--net-eff", "0.9", "--baseline", "--no-sim"},
                    &out, &err),
            0)
      << err;
  EXPECT_NE(out.find("0 simulated"), std::string::npos);
  EXPECT_EQ(run_cli({"--model", "13b", "--gpus", "16", "--batch", "32",
                     "--net-eff", "0.9", "--schedule", "gpipe", "--top-k",
                     "2"},
                    &out, &err),
            0)
      << err;
  EXPECT_NE(out.find("winner: "), std::string::npos);
}

// ------------------------------------------------------- supporting pieces

TEST(PlanSupport, ConfigByNameIsCaseInsensitive) {
  model::ModelConfig cfg;
  EXPECT_TRUE(model::config_by_name("175B", cfg));
  EXPECT_EQ(cfg.name, "175B");
  EXPECT_TRUE(model::config_by_name("13b", cfg));
  EXPECT_FALSE(model::config_by_name("gpt5", cfg));
}

TEST(PlanSupport, DescribeRendersTheFullLayout) {
  plan::PlanSpec spec = table2_spec(3072);
  plan::PlanCandidate cand;
  cand.par = parallel::ParallelConfig{.tp = 8, .pp = 8, .dp = 48, .vpp = 6};
  const std::string text = engine::describe(plan::job_config(spec, cand));
  EXPECT_EQ(text,
            "175B gpus=3072 tp=8 pp=8 dp=48 vpp=6 batch=6144 m=128 "
            "overlap=megascale");
}

}  // namespace
}  // namespace ms
