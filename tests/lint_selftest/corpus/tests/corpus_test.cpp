// Fixture test tree: gives bad_digest.cpp coverage via its header include
// and bad_entropy.cpp coverage via a stem mention; the orphan fixture in
// util/ is deliberately never referenced here so test-coverage fires on it.
#include "diag/bad_digest.h"

// bad_entropy and bad_wallclock are exercised elsewhere in the fixture
// narrative, and bad_plan_report has coverage so only ordered-digest fires
// on it.
