// Fixture: whole-file waiver honored — zero findings expected here.
// ms-lint: allow-file(mutex-annotated): fixture — designated raw home
#pragma once

#include <mutex>

namespace fixture {

struct RawHome {
  std::mutex mu;
};

}  // namespace fixture
