// Fixture: raw monotonic-clock reads outside core/wallclock.* — the
// profiler's sanctioned clock module is exempt, everything else fires.
#include <chrono>

namespace fixture {

long long elapsed_ns() {
  using clock = std::chrono::steady_clock;  // fires ambient-entropy
  return clock::now().time_since_epoch().count();
}

long long hires_ns() {
  return std::chrono::high_resolution_clock::now()  // fires ambient-entropy
      .time_since_epoch()
      .count();
}

long long sanctioned_ns() {
  // ms-lint: allow(ambient-entropy): fixture — waiver honored, no finding
  return std::chrono::steady_clock::now().time_since_epoch().count();
}

}  // namespace fixture
