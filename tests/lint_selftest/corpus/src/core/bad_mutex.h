// Fixture: raw std primitives invisible to thread-safety analysis.
#pragma once

#include <mutex>

namespace fixture {

class Counter {
 public:
  void bump() {
    std::lock_guard<std::mutex> lock(mu_);  // fires mutex-annotated
    ++n_;
  }

 private:
  std::mutex mu_;  // fires mutex-annotated
  int n_ = 0;
};

}  // namespace fixture
