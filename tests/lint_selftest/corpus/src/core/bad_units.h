// Fixture: unit-literal and raw-seconds violations plus honored waivers.
#pragma once

namespace fixture {

constexpr double kNsPerSec = 1e9;  // fires unit-literal

struct Config {
  double timeout_s = 0;  // fires raw-seconds
  // ms-lint: allow(raw-seconds): fixture — waiver honored, no finding
  double delay_seconds = 0;
  // ms-lint: allow(unit-literal):
  double scale = 1.0;  // the bare waiver above fires [waiver] itself
};

}  // namespace fixture
