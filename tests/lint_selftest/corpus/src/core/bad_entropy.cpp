// Fixture: ambient entropy outside the designated homes.
#include <chrono>
#include <cstdlib>
#include <ctime>
#include <random>

namespace fixture {

int roll() {
  return rand() % 6;  // fires ambient-entropy
}

long stamp() {
  return static_cast<long>(time(nullptr));  // fires ambient-entropy
}

long long wall_ns() {
  using clock = std::chrono::system_clock;  // fires ambient-entropy
  return clock::now().time_since_epoch().count();
}

unsigned hardware_seed() {
  // ms-lint: allow(ambient-entropy): fixture — waiver honored, no finding
  std::random_device rd;
  return rd();
}

}  // namespace fixture
