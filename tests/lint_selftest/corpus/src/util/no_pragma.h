// Fixture: include-guarded header (fires the once-pragma rule at line 1).
#ifndef FIXTURE_UTIL_NO_PRAGMA_H_
#define FIXTURE_UTIL_NO_PRAGMA_H_

namespace fixture {
inline int answer() { return 42; }
}  // namespace fixture

#endif  // FIXTURE_UTIL_NO_PRAGMA_H_
