// Fixture: translation unit no test references (fires test-coverage).
namespace fixture {

int orphan() { return 7; }

}  // namespace fixture
