// Fixture: hash-order iteration in a digest emitter (ordered-digest).
#include "diag/bad_digest.h"

namespace fixture {

void StepDigest::bump(int rank) { ++per_rank_[rank]; }

std::uint64_t StepDigest::digest() const {
  std::uint64_t d = 14695981039346656037ull;
  for (const auto& [rank, count] : per_rank_) {  // fires ordered-digest
    d = (d ^ static_cast<std::uint64_t>(rank)) * 1099511628211ull;
    d = (d ^ count) * 1099511628211ull;
  }
  // ms-lint: allow(ordered-digest): fixture — waiver honored, no finding
  for (const auto& [rank, count] : per_rank_) d += count + rank;
  return d;
}

}  // namespace fixture
