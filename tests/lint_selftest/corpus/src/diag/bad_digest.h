// Fixture: unordered container declaration feeding a digest emitter.
#pragma once

#include <cstdint>
#include <unordered_map>

namespace fixture {

class StepDigest {
 public:
  void bump(int rank);
  std::uint64_t digest() const;

 private:
  std::unordered_map<int, std::uint64_t> per_rank_;
};

}  // namespace fixture
