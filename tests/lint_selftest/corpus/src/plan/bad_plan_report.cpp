// Fixture: a planner report emitter whose text never names its report
// format — the src/plan/ location alone must hold it to the ordered-
// iteration bar (rule scope, not keyword match).
#include <string>
#include <unordered_map>

namespace ms::plan {

std::string render_ranked(
    const std::unordered_map<std::string, double>& plans) {
  std::string out;
  for (const auto& [name, step] : plans) {
    out += name + " " + std::to_string(step) + "\n";
  }
  return out;
}

}  // namespace ms::plan
