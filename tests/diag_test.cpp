#include <gtest/gtest.h>

#include <thread>

#include "diag/heatmap.h"
#include "diag/stream.h"
#include "diag/timeline.h"
#include "diag/viz3d.h"
#include "support/json.h"

namespace ms::diag {
namespace {

// --------------------------------------------------------------- heatmap

TEST(Heatmap, MeansPerCell) {
  PerformanceHeatmap hm;
  hm.add_sample(0, "fwd", 1.0);
  hm.add_sample(0, "fwd", 3.0);
  hm.add_sample(0, "bwd", 4.0);
  EXPECT_DOUBLE_EQ(hm.mean(0, "fwd"), 2.0);
  EXPECT_DOUBLE_EQ(hm.mean(0, "bwd"), 4.0);
  EXPECT_DOUBLE_EQ(hm.mean(1, "fwd"), 0.0);
  EXPECT_EQ(hm.machine_count(), 1);
}

TEST(Heatmap, DetectsTenPercentStraggler) {
  // The §6.3 case: specific hosts take ~10% longer on the same forward
  // computation.
  PerformanceHeatmap hm;
  for (int machine = 0; machine < 64; ++machine) {
    const double factor = machine == 17 ? 1.10 : 1.0;
    for (int step = 0; step < 20; ++step) {
      hm.add_sample(machine, "fwd", 0.010 * factor);
      hm.add_sample(machine, "bwd", 0.020 * factor);
    }
  }
  const auto outliers = hm.outliers(0.05);
  ASSERT_EQ(outliers.size(), 1u);
  EXPECT_EQ(outliers[0], 17);
}

TEST(Heatmap, NoOutliersOnUniformCluster) {
  PerformanceHeatmap hm;
  for (int machine = 0; machine < 16; ++machine) {
    hm.add_sample(machine, "fwd", 0.010);
  }
  EXPECT_TRUE(hm.outliers(0.05).empty());
}

TEST(Heatmap, ThresholdControlsSensitivity) {
  PerformanceHeatmap hm;
  for (int machine = 0; machine < 16; ++machine) {
    hm.add_sample(machine, "fwd", machine == 3 ? 0.0104 : 0.010);
  }
  EXPECT_TRUE(hm.outliers(0.05).empty());       // 4% < 5%
  EXPECT_EQ(hm.outliers(0.02).size(), 1u);      // 4% > 2%
}

TEST(Heatmap, AsciiMarksStragglers) {
  PerformanceHeatmap hm;
  for (int machine = 0; machine < 8; ++machine) {
    hm.add_sample(machine, "fwd", machine == 5 ? 0.012 : 0.010);
  }
  const std::string art = hm.ascii(0.05);
  EXPECT_NE(art.find("STRAGGLER"), std::string::npos);
  EXPECT_NE(art.find("fwd"), std::string::npos);
}

// -------------------------------------------------------------- timeline

TEST(Timeline, RankSpansSorted) {
  TimelineTrace trace;
  trace.add({.rank = 0, .name = "bwd", .tag = "bwd", .start = seconds(2.0),
             .end = seconds(3.0)});
  trace.add({.rank = 0, .name = "fwd", .tag = "fwd", .start = seconds(1.0),
             .end = seconds(2.0)});
  auto spans = trace.rank_spans(0);
  ASSERT_EQ(spans.size(), 2u);
  EXPECT_EQ(spans[0].name, "fwd");
  EXPECT_EQ(spans[1].name, "bwd");
}

TEST(Timeline, ActiveAtFindsConcurrentWork) {
  TimelineTrace trace;
  trace.add({.rank = 0, .name = "fwd", .tag = "fwd", .start = 0,
             .end = seconds(2.0)});
  trace.add({.rank = 1, .name = "fwd", .tag = "fwd", .start = seconds(1.0),
             .end = seconds(3.0)});
  auto active = trace.active_at(seconds(1.5));
  EXPECT_EQ(active.size(), 2u);
  active = trace.active_at(seconds(2.5));
  ASSERT_EQ(active.size(), 1u);
  EXPECT_EQ(active[0].rank, 1);
}

TEST(Timeline, IdleTimeIsBubble) {
  TimelineTrace trace;
  trace.add({.rank = 0, .name = "fwd", .tag = "fwd", .start = 0,
             .end = seconds(1.0)});
  trace.add({.rank = 0, .name = "bwd", .tag = "bwd", .start = seconds(3.0),
             .end = seconds(4.0)});
  EXPECT_EQ(trace.idle_time(0, 0, seconds(4.0)), seconds(2.0));
}

TEST(Timeline, ActiveAtIsHalfOpenAndSkipsZeroLengthSpans) {
  TimelineTrace trace;
  trace.add({.rank = 0, .name = "fwd", .tag = "fwd", .start = seconds(1.0),
             .end = seconds(2.0)});
  trace.add({.rank = 1, .name = "marker", .tag = "fwd", .start = seconds(1.0),
             .end = seconds(1.0)});  // zero-length: never active
  const auto at_start = trace.active_at(seconds(1.0));
  ASSERT_EQ(at_start.size(), 1u);
  EXPECT_EQ(at_start[0].rank, 0);
  EXPECT_TRUE(trace.active_at(seconds(2.0)).empty());  // end is exclusive
  EXPECT_TRUE(trace.active_at(seconds(0.5)).empty());
}

TEST(Timeline, IdleTimeBoundaryTouchingSpansLeaveNoGap) {
  TimelineTrace trace;
  trace.add({.rank = 0, .name = "fwd", .tag = "fwd", .start = 0,
             .end = seconds(1.0)});
  trace.add({.rank = 0, .name = "bwd", .tag = "bwd", .start = seconds(1.0),
             .end = seconds(2.0)});
  EXPECT_EQ(trace.idle_time(0, 0, seconds(2.0)), 0);
}

TEST(Timeline, IdleTimeOverlappingSpansNotDoubleCounted) {
  TimelineTrace trace;
  trace.add({.rank = 0, .name = "fwd", .tag = "fwd", .start = 0,
             .end = seconds(2.0)});
  trace.add({.rank = 0, .name = "send", .tag = "pp-comm",
             .start = seconds(1.0), .end = seconds(3.0)});
  // Union of busy time is [0s, 3s); idle over [0s, 4s) is exactly 1s.
  EXPECT_EQ(trace.idle_time(0, 0, seconds(4.0)), seconds(1.0));
  // A span nested inside another adds nothing.
  trace.add({.rank = 0, .name = "tp", .tag = "tp-comm",
             .start = seconds(0.5), .end = seconds(1.5)});
  EXPECT_EQ(trace.idle_time(0, 0, seconds(4.0)), seconds(1.0));
}

TEST(Timeline, IdleTimeZeroLengthSpansContributeNothing) {
  TimelineTrace trace;
  trace.add({.rank = 0, .name = "marker", .tag = "fwd", .start = seconds(1.0),
             .end = seconds(1.0)});
  EXPECT_EQ(trace.idle_time(0, 0, seconds(2.0)), seconds(2.0));
}

TEST(Timeline, IdleTimeOfUnknownRankIsWholeWindow) {
  TimelineTrace trace;
  trace.add({.rank = 0, .name = "fwd", .tag = "fwd", .start = 0,
             .end = seconds(1.0)});
  EXPECT_EQ(trace.idle_time(7, 0, seconds(3.0)), seconds(3.0));
  // Spans clipped to the window only count their covered part (0.5s busy).
  EXPECT_EQ(trace.idle_time(0, seconds(0.5), seconds(3.0)), seconds(2.0));
}

TEST(Timeline, ChromeTraceEscapesNamesAndKeepsSubMicrosecondSpans) {
  TimelineTrace trace;
  trace.add({.rank = 0, .name = "fwd \"q\"\\n", .tag = "a\tb",
             .start = 0, .end = 500, .detail = "s=0 c=1\nnote=\"x\""});
  const auto v = testjson::parse(trace.chrome_trace_json());
  const auto& ev = v.at("traceEvents")[0];
  EXPECT_EQ(ev.at("name").str, "fwd \"q\"\\n");
  EXPECT_EQ(ev.at("cat").str, "a\tb");
  EXPECT_EQ(ev.at("args").at("detail").str, "s=0 c=1\nnote=\"x\"");
  EXPECT_DOUBLE_EQ(ev.at("dur").number, 0.5);  // 500 ns = 0.5 us, not 0
}

TEST(Timeline, RenderShowsLanesAndGlyphs) {
  TimelineTrace trace;
  trace.add({.rank = 0, .name = "fwd", .tag = "fwd", .start = 0,
             .end = seconds(1.0)});
  trace.add({.rank = 1, .name = "bwd", .tag = "bwd", .start = seconds(1.0),
             .end = seconds(2.0)});
  const std::string art = trace.render(0, seconds(2.0), 40);
  EXPECT_NE(art.find("rank   0"), std::string::npos);
  EXPECT_NE(art.find('F'), std::string::npos);
  EXPECT_NE(art.find('B'), std::string::npos);
}

TEST(Timeline, ChromeTraceJsonParses) {
  TimelineTrace trace;
  trace.add({.rank = 0, .name = "fwd-0", .tag = "fwd",
             .start = microseconds(10.0), .end = microseconds(30.0)});
  trace.add({.rank = 1, .name = "bwd-0", .tag = "bwd",
             .start = microseconds(30.0), .end = microseconds(70.0)});
  const auto v = testjson::parse(trace.chrome_trace_json());
  ASSERT_TRUE(v.is_object());
  const auto& events = v.at("traceEvents");
  ASSERT_TRUE(events.is_array());
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[0].at("ph").str, "X");
  EXPECT_EQ(events[0].at("name").str, "fwd-0");
  EXPECT_EQ(events[0].at("cat").str, "fwd");
  EXPECT_DOUBLE_EQ(events[0].at("ts").number, 10.0);
  EXPECT_DOUBLE_EQ(events[0].at("dur").number, 20.0);
  EXPECT_DOUBLE_EQ(events[1].at("pid").number, 1.0);
}

TEST(Timeline, ChromeTraceRoundTripsCountAndOrder) {
  // Spans come back 1:1 and in insertion order, so the export is a faithful
  // serialization of the trace (the telemetry exporters rely on this).
  TimelineTrace trace;
  constexpr int kSpans = 25;
  for (int i = 0; i < kSpans; ++i) {
    trace.add({.rank = i % 4, .name = "op-" + std::to_string(i), .tag = "fwd",
               .start = i * microseconds(5.0),
               .end = i * microseconds(5.0) + microseconds(3.0)});
  }
  const auto v = testjson::parse(trace.chrome_trace_json());
  const auto& events = v.at("traceEvents");
  ASSERT_EQ(events.size(), static_cast<std::size_t>(kSpans));
  for (int i = 0; i < kSpans; ++i) {
    EXPECT_EQ(events[static_cast<std::size_t>(i)].at("name").str,
              "op-" + std::to_string(i));
    EXPECT_DOUBLE_EQ(events[static_cast<std::size_t>(i)].at("ts").number,
                     i * 5.0);
  }
}

TEST(Timeline, ChromeTraceEmptyTraceIsValidJson) {
  TimelineTrace trace;
  const auto v = testjson::parse(trace.chrome_trace_json());
  EXPECT_EQ(v.at("traceEvents").size(), 0u);
}

// ----------------------------------------------------------------- viz3d

parallel::ParallelConfig viz_cfg() {
  return parallel::ParallelConfig{.tp = 2, .pp = 2, .dp = 2};
}

TEST(Viz3d, DescribeListsAllGroups) {
  Parallel3DVisualizer viz(viz_cfg());
  const std::string desc = viz.describe(0);
  EXPECT_NE(desc.find("tensor group"), std::string::npos);
  EXPECT_NE(desc.find("data group"), std::string::npos);
  EXPECT_NE(desc.find("pipeline group"), std::string::npos);
  EXPECT_NE(desc.find("send activations"), std::string::npos);
}

TEST(Viz3d, DotGraphHasEdges) {
  Parallel3DVisualizer viz(viz_cfg());
  const std::string dot = viz.dot_graph(0);
  EXPECT_NE(dot.find("digraph"), std::string::npos);
  EXPECT_NE(dot.find("label=\"tp\""), std::string::npos);
  EXPECT_NE(dot.find("label=\"dp\""), std::string::npos);
  EXPECT_NE(dot.find("label=\"pp\""), std::string::npos);
}

TEST(Viz3d, LocatesHungRankFromSilence) {
  // World of 8; rank 5 hangs. Everyone else logs a blocked op.
  Parallel3DVisualizer viz(viz_cfg());
  std::map<int, std::string> logs;
  for (int r = 0; r < 8; ++r) {
    if (r != 5) logs[r] = "dp-allgather";
  }
  auto suspects = viz.locate_hung_ranks(logs);
  ASSERT_EQ(suspects.size(), 1u);
  EXPECT_EQ(suspects[0], 5);
}

TEST(Viz3d, NoSuspectsWhenEveryoneLogs) {
  Parallel3DVisualizer viz(viz_cfg());
  std::map<int, std::string> logs;
  for (int r = 0; r < 8; ++r) logs[r] = "pp-recv";
  EXPECT_TRUE(viz.locate_hung_ranks(logs).empty());
}

TEST(Viz3d, MultipleHungRanksAllFound) {
  Parallel3DVisualizer viz(viz_cfg());
  std::map<int, std::string> logs;
  for (int r = 0; r < 8; ++r) {
    if (r != 2 && r != 6) logs[r] = "tp-allgather";
  }
  auto suspects = viz.locate_hung_ranks(logs);
  EXPECT_EQ(suspects, (std::vector<int>{2, 6}));
}

// ---------------------------------------------------------------- stream

TEST(Stream, StoreAggregatesPerRankSegment) {
  EventStore store;
  store.ingest({.rank = 0, .step = 1, .segment = "fwd", .duration = seconds(1.0)});
  store.ingest({.rank = 0, .step = 2, .segment = "fwd", .duration = seconds(3.0)});
  EXPECT_EQ(store.total_events(), 2u);
  EXPECT_EQ(store.mean_duration(0, "fwd"), seconds(2.0));
  EXPECT_EQ(store.mean_duration(0, "bwd"), 0);
}

TEST(Stream, StepDrillDown) {
  EventStore store;
  store.ingest({.rank = 0, .step = 7, .segment = "fwd", .duration = 1});
  store.ingest({.rank = 1, .step = 7, .segment = "bwd", .duration = 2});
  store.ingest({.rank = 0, .step = 8, .segment = "fwd", .duration = 3});
  EXPECT_EQ(store.step_records(7).size(), 2u);
  EXPECT_EQ(store.step_records(9).size(), 0u);
}

TEST(Stream, StreamerDeliversEverything) {
  EventStore store;
  {
    EventStreamer streamer(store, 64);
    for (int i = 0; i < 1000; ++i) {
      ASSERT_TRUE(streamer.publish(
          {.rank = i % 8, .step = i, .segment = "fwd", .duration = seconds(0.01)}));
    }
    streamer.close();
  }
  EXPECT_EQ(store.total_events(), 1000u);
}

TEST(Stream, MultipleProducers) {
  EventStore store;
  {
    EventStreamer streamer(store, 32);
    std::vector<std::thread> producers;
    for (int p = 0; p < 4; ++p) {
      producers.emplace_back([&, p] {
        for (int i = 0; i < 250; ++i) {
          streamer.publish({.rank = p, .step = i, .segment = "bwd",
                            .duration = seconds(0.02)});
        }
      });
    }
    for (auto& t : producers) t.join();
    streamer.close();
  }
  EXPECT_EQ(store.total_events(), 1000u);
  EXPECT_NEAR(static_cast<double>(store.mean_duration(2, "bwd")),
              static_cast<double>(milliseconds(20.0)), 1.0);
}

TEST(Stream, PublishAfterCloseFails) {
  EventStore store;
  EventStreamer streamer(store);
  streamer.close();
  EXPECT_FALSE(streamer.publish({.rank = 0, .step = 0, .segment = "fwd",
                                 .duration = 1}));
}

}  // namespace
}  // namespace ms::diag
