// Tests for the correctness-auditing subsystem (src/check): the invariant
// auditor, the engine's determinism digest, and the MS_AUDIT hooks wired
// through the sim/net/collective/ft layers. Every suite here resets the
// process-wide Auditor so a clean scenario can assert "zero violations,
// many checks" and an injected violation can assert exactly one tally.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "check/audit.h"
#include "check/digest.h"
#include "check/metrics_sink.h"
#include "collective/comm.h"
#include "core/rng.h"
#include "ft/faults.h"
#include "ft/workflow.h"
#include "net/ccsim.h"
#include "net/flowsim.h"
#include "net/topology.h"
#include "sim/engine.h"
#include "sim/graph.h"
#include "telemetry/metrics.h"

namespace ms {
namespace {

constexpr bool kAuditEnabled =
#if defined(MS_AUDIT_ENABLED) && MS_AUDIT_ENABLED
    true;
#else
    false;
#endif

class CheckTest : public ::testing::Test {
 protected:
  void SetUp() override {
    check::Auditor::instance().set_sink(nullptr);
    check::Auditor::instance().set_abort_on_violation(false);
    check::Auditor::instance().reset();
  }
  void TearDown() override {
    check::Auditor::instance().set_sink(nullptr);
    check::Auditor::instance().reset();
  }
};

// Suites asserting on tallies need the auditor compiled in; they skip
// cleanly under -DMS_AUDIT=OFF (MacroMatchesBuildConfig covers that mode).
class AuditEnabledTest : public CheckTest {
 protected:
  void SetUp() override {
    if (!kAuditEnabled) GTEST_SKIP() << "MS_AUDIT compiled out";
    CheckTest::SetUp();
  }
};

TEST(CheckAuditConfig, MacroMatchesBuildConfig) {
  check::Auditor::instance().reset();
  int evals = 0;
  MS_AUDIT("test.domain", "probe_pass", (++evals, true), "unreachable");
  MS_AUDIT("test.domain", "probe_fail", (++evals, false), "injected");
  if (kAuditEnabled) {
    EXPECT_EQ(evals, 2);
    EXPECT_EQ(check::Auditor::instance().violations(), 1u);
  } else {
    // Compiled out: the condition expression is never even evaluated.
    EXPECT_EQ(evals, 0);
    EXPECT_EQ(check::Auditor::instance().violations(), 0u);
  }
  check::Auditor::instance().reset();
}

// ----------------------------------------------------------- the auditor

using CheckAudit = AuditEnabledTest;

TEST_F(CheckAudit, PassingChecksTallyNoViolations) {
  MS_AUDIT("test.domain", "always_true", 1 + 1 == 2, "unreachable");
  EXPECT_GE(check::Auditor::instance().checks(), 1u);
  EXPECT_EQ(check::Auditor::instance().violations(), 0u);
  EXPECT_TRUE(check::Auditor::instance().snapshot().empty());
}

TEST_F(CheckAudit, ViolationsAreTalliedPerInvariant) {
  MS_AUDIT("test.domain", "broken", false, "first failure");
  MS_AUDIT("test.domain", "broken", false, "second failure");
  MS_AUDIT("test.domain", "other", false, "unrelated");
  auto& auditor = check::Auditor::instance();
  EXPECT_EQ(auditor.violations(), 3u);
  EXPECT_EQ(auditor.violations("test.domain", "broken"), 2u);
  EXPECT_EQ(auditor.violations("test.domain", "other"), 1u);
  EXPECT_EQ(auditor.violations("test.domain", "missing"), 0u);
  const auto snap = auditor.snapshot();
  ASSERT_EQ(snap.size(), 2u);
  EXPECT_EQ(snap[0].invariant, "broken");
  EXPECT_EQ(snap[0].count, 2u);
  EXPECT_EQ(snap[0].message, "second failure");  // latest message retained
}

TEST_F(CheckAudit, MessageOnlyEvaluatedOnFailure) {
  int renders = 0;
  // [[maybe_unused]]: under -DMS_AUDIT=OFF the macro discards its message
  // argument, so the lambda is never called (this suite is then skipped).
  [[maybe_unused]] auto expensive = [&renders] {
    ++renders;
    return std::string("rendered");
  };
  MS_AUDIT("test.domain", "fine", true, expensive());
  EXPECT_EQ(renders, 0);
  MS_AUDIT("test.domain", "bad", false, expensive());
  EXPECT_EQ(renders, 1);
}

TEST_F(CheckAudit, SinkReceivesEveryViolation) {
  std::vector<check::Violation> seen;
  check::Auditor::instance().set_sink(
      [&seen](const check::Violation& v) { seen.push_back(v); });
  MS_AUDIT("test.domain", "broken", false, "detail");
  ASSERT_EQ(seen.size(), 1u);
  EXPECT_EQ(seen[0].domain, "test.domain");
  EXPECT_EQ(seen[0].invariant, "broken");
  EXPECT_EQ(seen[0].message, "detail");
  EXPECT_EQ(seen[0].count, 1u);
}

TEST_F(CheckAudit, MetricsSinkExportsLabeledCounters) {
  telemetry::MetricsRegistry registry;
  check::Auditor::instance().set_sink(check::metrics_sink(registry));
  MS_AUDIT("net.ccsim", "queue_nonnegative", false, "injected");
  MS_AUDIT("net.ccsim", "queue_nonnegative", false, "injected again");
  check::Auditor::instance().set_sink(nullptr);
  const auto snap = registry.snapshot();
  const auto* sample = snap.find(
      "audit_violations_total",
      {{"domain", "net.ccsim"}, {"invariant", "queue_nonnegative"}});
  ASSERT_NE(sample, nullptr);
  EXPECT_DOUBLE_EQ(sample->value, 2.0);
}

TEST_F(CheckAudit, ResetClearsTallies) {
  MS_AUDIT("test.domain", "broken", false, "detail");
  check::Auditor::instance().reset();
  EXPECT_EQ(check::Auditor::instance().checks(), 0u);
  EXPECT_EQ(check::Auditor::instance().violations(), 0u);
  EXPECT_TRUE(check::Auditor::instance().snapshot().empty());
}

// ----------------------------------------- injected violations are caught

using CheckInjection = AuditEnabledTest;

TEST_F(CheckInjection, EngineCatchesScheduleIntoThePast) {
  sim::Engine e;
  TimeNs fired_at = -1;
  e.at(seconds(2.0), [&] {
    // Deliberate violation: schedule behind the clock. The auditor flags
    // it and the engine clamps the event to now() to stay monotone.
    e.at(seconds(1.0), [&] { fired_at = e.now(); });
  });
  e.run();
  EXPECT_EQ(check::Auditor::instance().violations("sim.engine",
                                                  "schedule_not_in_past"),
            1u);
  EXPECT_EQ(check::Auditor::instance().violations("sim.engine",
                                                  "time_monotonic"),
            0u);  // the clamp kept execution monotone
  EXPECT_EQ(fired_at, seconds(2.0));
}

TEST_F(CheckInjection, ViolationSurfacesInTelemetryRegistry) {
  telemetry::MetricsRegistry registry;
  check::Auditor::instance().set_sink(check::metrics_sink(registry));
  sim::Engine e;
  e.at(seconds(1.0), [&] { e.at(0, [] {}); });
  e.run();
  check::Auditor::instance().set_sink(nullptr);
  // Bind the snapshot before find(): a pointer into a temporary snapshot
  // dangles once the full expression ends.
  const auto snap = registry.snapshot();
  const auto* sample = snap.find(
      "audit_violations_total",
      {{"domain", "sim.engine"}, {"invariant", "schedule_not_in_past"}});
  ASSERT_NE(sample, nullptr);
  EXPECT_DOUBLE_EQ(sample->value, 1.0);
}

// --------------------------------------------- clean runs audit clean

using CheckCleanRun = AuditEnabledTest;

net::ClosParams small_clos() {
  net::ClosParams p;
  p.hosts = 32;
  p.nics_per_host = 2;
  p.hosts_per_tor = 8;
  p.pods = 2;
  p.aggs_per_pod = 2;
  p.spines_per_plane = 2;
  return p;
}

TEST_F(CheckCleanRun, FlowSimConservesBytes) {
  net::ClosTopology topo(small_clos());
  net::FlowSim fs(topo);
  Rng rng(0xF10);
  for (int i = 0; i < 24; ++i) {
    const int src = static_cast<int>(rng.uniform(0, 16));
    const int dst = 16 + static_cast<int>(rng.uniform(0, 16));
    auto paths = topo.ecmp_paths(src, dst, 0);
    fs.add_flow(paths[static_cast<std::size_t>(rng.uniform(
                    0, static_cast<double>(paths.size())))],
                (1 + i % 4) * 1_MiB, milliseconds(static_cast<double>(i)));
  }
  fs.run();
  EXPECT_GT(check::Auditor::instance().checks(), 0u);
  EXPECT_EQ(check::Auditor::instance().violations(), 0u);
}

TEST_F(CheckCleanRun, CcSimQueueAndRatesStayBounded) {
  for (auto make : {
           std::function<std::unique_ptr<net::CcAlgorithm>()>(
               [] { return std::make_unique<net::Dcqcn>(); }),
           std::function<std::unique_ptr<net::CcAlgorithm>()>(
               [] { return std::make_unique<net::Swift>(); }),
           std::function<std::unique_ptr<net::CcAlgorithm>()>(
               [] { return std::make_unique<net::MegaScaleCc>(); }),
       }) {
    net::CcSimParams params;
    params.senders = 8;
    params.duration_s = 0.01;
    (void)net::run_cc_sim(params, make);
  }
  EXPECT_GT(check::Auditor::instance().checks(), 0u);
  EXPECT_EQ(check::Auditor::instance().violations(), 0u);
}

TEST_F(CheckCleanRun, CollectiveCostsMonotoneInBytes) {
  collective::CollectiveModel model(collective::ClusterSpec{});
  for (const auto domain :
       {collective::Domain::kIntraNode, collective::Domain::kInterNode}) {
    for (int ranks : {2, 8, 64}) {
      TimeNs prev = -1;
      for (Bytes b = 4_KiB; b <= 1_GiB; b *= 4) {
        const TimeNs t = model.all_reduce(b, ranks, domain);
        EXPECT_GE(t, prev);
        prev = t;
        model.all_gather(b, ranks, domain);
        model.reduce_scatter(b, ranks, domain);
        model.all_to_all(b, ranks, domain);
        model.broadcast(b, ranks, domain);
        model.send_recv(b, domain);
      }
    }
  }
  EXPECT_GT(check::Auditor::instance().checks(), 0u);
  EXPECT_EQ(check::Auditor::instance().violations(), 0u);
}

TEST_F(CheckCleanRun, FtWorkflowAccountingCloses) {
  ft::WorkflowConfig cfg;
  cfg.nodes = 32;
  Rng rng(11);
  const TimeNs duration = days(3.0);
  const auto faults = ft::draw_fault_schedule(
      duration, hours(6.0), cfg.nodes, ft::default_fault_mix(), rng);
  const auto report = ft::run_robust_training(cfg, duration, faults, rng);
  EXPECT_GT(report.restarts, 0);
  EXPECT_GT(check::Auditor::instance().checks(), 0u);
  EXPECT_EQ(check::Auditor::instance().violations(), 0u);
}

// ------------------------------------------------------- digest mechanics

using CheckDigest = CheckTest;

TEST_F(CheckDigest, OrderSensitive) {
  check::Digest a, b;
  a.fold(std::uint64_t{1});
  a.fold(std::uint64_t{2});
  b.fold(std::uint64_t{2});
  b.fold(std::uint64_t{1});
  EXPECT_NE(a.value(), b.value());
}

TEST_F(CheckDigest, StringFoldsAreDelimited) {
  check::Digest a, b;
  a.fold("ab");
  a.fold("c");
  b.fold("a");
  b.fold("bc");
  EXPECT_NE(a.value(), b.value());
}

TEST_F(CheckDigest, EmptyDigestsEqual) {
  check::Digest a, b;
  EXPECT_EQ(a.value(), b.value());
  a.fold(std::uint64_t{0});
  EXPECT_NE(a.value(), b.value());  // folding zero still advances the state
  a.reset();
  EXPECT_EQ(a.value(), b.value());
}

// ----------------------------------------------- engine digest determinism

// A sec5_observability-style workload: a pipelined op graph with
// seed-dependent durations driven through the real engine, plus a tail of
// random schedule/cancel churn directly against the event queue.
std::uint64_t scenario_digest(std::uint64_t seed) {
  sim::Engine e;
  Rng rng(seed);

  sim::GraphExecutor g(4);
  std::vector<sim::OpId> prev_stage;
  for (int stage = 0; stage < 4; ++stage) {
    std::vector<sim::OpId> ops;
    for (int micro = 0; micro < 8; ++micro) {
      const TimeNs d = microseconds(rng.uniform(50.0, 500.0));
      ops.push_back(g.add_op(
          {.name = "op", .stream = stage, .duration = d}));
      if (stage > 0) {
        g.add_dep(prev_stage[static_cast<std::size_t>(micro)], ops.back());
      }
    }
    prev_stage = ops;
  }
  g.run(e);

  std::vector<sim::EventId> pending;
  for (int i = 0; i < 200; ++i) {
    pending.push_back(
        e.after(microseconds(rng.uniform(1.0, 100.0)), [] {}));
    if (i % 3 == 0 && !pending.empty()) {
      const std::size_t victim = static_cast<std::size_t>(
          rng.uniform(0, static_cast<double>(pending.size())));
      e.cancel(pending[victim]);
    }
  }
  e.run();
  return e.digest();
}

TEST_F(CheckDigest, SameSeedSameDigest) {
  EXPECT_EQ(scenario_digest(0x5EED), scenario_digest(0x5EED));
  EXPECT_EQ(scenario_digest(42), scenario_digest(42));
}

TEST_F(CheckDigest, DifferentSeedsDifferentDigests) {
  EXPECT_NE(scenario_digest(0x5EED), scenario_digest(0x5EED + 1));
  EXPECT_NE(scenario_digest(1), scenario_digest(2));
}

TEST_F(CheckDigest, DigestReflectsExecutionNotScheduling) {
  // Two engines execute the same events; one also schedules-and-cancels
  // an extra event. Cancelled events never fire, so digests stay equal...
  sim::Engine plain, churned;
  for (auto* e : {&plain, &churned}) {
    e->at(seconds(1.0), [] {});
    e->at(seconds(2.0), [] {});
  }
  const sim::EventId doomed = churned.at(seconds(1.5), [] {});
  churned.cancel(doomed);
  plain.run();
  churned.run();
  // ...per (id, time) content: ids 1 and 2 executed at the same times.
  EXPECT_EQ(plain.digest(), churned.digest());
  EXPECT_EQ(plain.executed(), churned.executed());
  EXPECT_EQ(churned.cancelled(), 1u);
}

}  // namespace
}  // namespace ms
