// Numerical-equivalence tests for the functional parallelism module:
// ring collectives on real data, Megatron tensor-parallel layers, gradient
// accumulation (pipeline microbatching), and ZeRO-2 data parallelism.
#include <gtest/gtest.h>

#include <cmath>

#include "dist/collectives.h"
#include "dist/data_parallel.h"
#include "dist/tensor_parallel.h"
#include "optim/trainer.h"

namespace ms::dist {
namespace {

using optim::Tensor;

// ------------------------------------------------------------ collectives

TEST(Collectives, RingAllReduceMatchesElementwiseSum) {
  for (int n : {2, 4, 8}) {
    Rng rng(static_cast<std::uint64_t>(n));
    std::vector<Buffer> bufs(static_cast<std::size_t>(n));
    Buffer expected(static_cast<std::size_t>(n) * 16, 0.0f);
    for (auto& b : bufs) {
      b.resize(expected.size());
      for (std::size_t i = 0; i < b.size(); ++i) {
        b[i] = static_cast<float>(rng.normal());
        expected[i] += b[i];
      }
    }
    std::vector<Buffer*> ptrs;
    for (auto& b : bufs) ptrs.push_back(&b);
    ring_all_reduce_sum(ptrs);
    for (const auto& b : bufs) {
      for (std::size_t i = 0; i < b.size(); ++i) {
        EXPECT_NEAR(b[i], expected[i], 1e-4) << "n=" << n << " i=" << i;
      }
    }
  }
}

TEST(Collectives, ReduceScatterThenAllGatherEqualsAllReduce) {
  Rng rng(3);
  constexpr int kRanks = 4;
  std::vector<Buffer> inputs(kRanks, Buffer(32));
  for (auto& b : inputs) {
    for (auto& x : b) x = static_cast<float>(rng.normal());
  }
  std::vector<const Buffer*> in_ptrs;
  for (auto& b : inputs) in_ptrs.push_back(&b);
  auto shards = reduce_scatter_sum(in_ptrs, kRanks);
  std::vector<const Buffer*> shard_ptrs;
  for (auto& s : shards) shard_ptrs.push_back(&s);
  Buffer gathered = all_gather_concat(shard_ptrs);

  auto copies = inputs;
  std::vector<Buffer*> copy_ptrs;
  for (auto& b : copies) copy_ptrs.push_back(&b);
  all_reduce_sum(copy_ptrs);
  ASSERT_EQ(gathered.size(), copies[0].size());
  for (std::size_t i = 0; i < gathered.size(); ++i) {
    EXPECT_NEAR(gathered[i], copies[0][i], 1e-5);
  }
}

TEST(Collectives, BroadcastCopiesRoot) {
  Buffer a{1, 2, 3}, b{0, 0, 0}, c{9, 9, 9};
  broadcast_from({&a, &b, &c}, 0);
  EXPECT_EQ(b, a);
  EXPECT_EQ(c, a);
}

// -------------------------------------------------------- tensor parallel

TEST(TensorParallel, ColumnParallelForwardMatchesSerial) {
  Rng rng(10);
  auto w = Tensor::randn({8, 12}, rng, 0.5f, true);
  auto b = Tensor::randn({12}, rng, 0.5f, true);
  auto x = Tensor::randn({5, 8}, rng, 0.5f);
  const Tensor serial = optim::add(optim::matmul(x, w), b);
  for (int shards : {2, 3, 4}) {
    ColumnParallelLinear cp(w, b, shards);
    const Tensor parallel = cp.forward(x);
    ASSERT_EQ(parallel.shape(), serial.shape());
    for (std::int64_t i = 0; i < serial.numel(); ++i) {
      EXPECT_NEAR(parallel.data()[i], serial.data()[i], 1e-5)
          << "shards=" << shards;
    }
  }
}

TEST(TensorParallel, RowParallelForwardMatchesSerial) {
  Rng rng(11);
  auto w = Tensor::randn({12, 6}, rng, 0.5f, true);
  auto b = Tensor::randn({6}, rng, 0.5f, true);
  auto x = Tensor::randn({5, 12}, rng, 0.5f);
  const Tensor serial = optim::add(optim::matmul(x, w), b);
  for (int shards : {2, 3, 4}) {
    RowParallelLinear rp(w, b, shards);
    const Tensor parallel = rp.forward(x);
    for (std::int64_t i = 0; i < serial.numel(); ++i) {
      EXPECT_NEAR(parallel.data()[i], serial.data()[i], 1e-5)
          << "shards=" << shards;
    }
  }
}

TEST(TensorParallel, ColumnParallelGradientsMatchWeightSlices) {
  Rng rng(12);
  auto w = Tensor::randn({6, 8}, rng, 0.5f, true);
  auto b = Tensor::randn({8}, rng, 0.5f, true);
  auto x = Tensor::randn({4, 6}, rng, 0.5f);

  // Serial gradients.
  Tensor serial_out = optim::add(optim::matmul(x, w), b);
  optim::sum(optim::mul(serial_out, serial_out)).backward();

  // Parallel gradients.
  ColumnParallelLinear cp(w, b, 2);
  Tensor par_out = cp.forward(x);
  optim::sum(optim::mul(par_out, par_out)).backward();

  // Shard s's weight grad must equal the matching column slice of dW.
  for (int s = 0; s < 2; ++s) {
    const auto& shard = cp.weight_shards()[static_cast<std::size_t>(s)];
    for (int i = 0; i < 6; ++i) {
      for (int j = 0; j < 4; ++j) {
        const float serial_grad = w.grad()[i * 8 + s * 4 + j];
        const float shard_grad =
            const_cast<Tensor&>(shard).grad()[i * 4 + j];
        EXPECT_NEAR(shard_grad, serial_grad, 1e-4);
      }
    }
  }
}

TEST(TensorParallel, MlpMatchesSerialMlp) {
  Rng rng(13);
  const int h = 8, f = 16, tokens = 5;
  auto w1 = Tensor::randn({h, f}, rng, 0.5f, true);
  auto b1 = Tensor::randn({f}, rng, 0.2f, true);
  auto w2 = Tensor::randn({f, h}, rng, 0.5f, true);
  auto b2 = Tensor::randn({h}, rng, 0.2f, true);
  auto x = Tensor::randn({tokens, h}, rng, 0.5f);

  const Tensor serial = optim::add(
      optim::matmul(optim::gelu(optim::add(optim::matmul(x, w1), b1)), w2),
      b2);

  for (int shards : {2, 4}) {
    TensorParallelMlp mlp(w1, b1, w2, b2, shards);
    const Tensor parallel = mlp.forward(x);
    for (std::int64_t i = 0; i < serial.numel(); ++i) {
      EXPECT_NEAR(parallel.data()[i], serial.data()[i], 1e-4)
          << "shards=" << shards;
    }
  }
}

TEST(TensorParallel, ShardLocalGeluNeedsColumnThenRowOrder) {
  // The defining Megatron trick: GeLU between a column-parallel and a
  // row-parallel layer requires NO communication. Verify the sharded
  // hidden activations are literally column slices of the serial hidden.
  Rng rng(14);
  auto w1 = Tensor::randn({4, 8}, rng, 0.5f, true);
  auto b1 = Tensor::randn({8}, rng, 0.2f, true);
  auto x = Tensor::randn({3, 4}, rng, 0.5f);
  ColumnParallelLinear cp(w1, b1, 2);
  auto hidden = cp.forward_sharded(x);
  const Tensor serial_hidden = optim::add(optim::matmul(x, w1), b1);
  for (int s = 0; s < 2; ++s) {
    for (int i = 0; i < 3; ++i) {
      for (int j = 0; j < 4; ++j) {
        EXPECT_NEAR(hidden[static_cast<std::size_t>(s)].data()[i * 4 + j],
                    serial_hidden.data()[i * 8 + s * 4 + j], 1e-5);
      }
    }
  }
}

// ----------------------------------- gradient accumulation (pipeline/PP)

TEST(GradAccumulation, MicrobatchSumEqualsFullBatch) {
  // The property pipeline parallelism relies on: accumulating the
  // (1/B-scaled) gradients of B microbatches equals the full-batch
  // gradient of the mean loss.
  optim::TinyGptConfig cfg;
  cfg.vocab = 16;
  cfg.seq_len = 8;
  cfg.hidden = 16;
  cfg.heads = 2;
  cfg.layers = 1;
  cfg.ffn_hidden = 32;
  optim::MarkovCorpus corpus(16, 3, 55);
  Rng data_rng(56);
  std::vector<std::vector<int>> batch;
  for (int i = 0; i < 4; ++i) {
    batch.push_back(corpus.sample_sequence(cfg.seq_len + 1, data_rng));
  }

  Rng init(57);
  optim::TinyGpt microbatched(cfg, init);
  for (const auto& seq : batch) {
    optim::scale(microbatched.loss(seq), 0.25f).backward();
  }

  Rng init2(57);
  optim::TinyGpt reference(cfg, init2);
  // "Full batch": mean of the four losses built as one graph.
  std::vector<Tensor> losses;
  for (const auto& seq : batch) {
    losses.push_back(optim::scale(reference.loss(seq), 0.25f));
  }
  optim::add_n({optim::add_n({losses[0], losses[1]}),
                optim::add_n({losses[2], losses[3]})})
      .backward();

  auto p1 = microbatched.parameters();
  auto p2 = reference.parameters();
  ASSERT_EQ(p1.size(), p2.size());
  for (std::size_t i = 0; i < p1.size(); ++i) {
    for (std::int64_t j = 0; j < p1[i].tensor.numel(); ++j) {
      EXPECT_NEAR(p1[i].tensor.grad()[j], p2[i].tensor.grad()[j], 2e-4)
          << p1[i].name;
    }
  }
}

// --------------------------------------------------------- data parallel

optim::TinyGptConfig dp_config() {
  optim::TinyGptConfig cfg;
  cfg.vocab = 16;
  cfg.seq_len = 8;
  cfg.hidden = 16;
  cfg.heads = 2;
  cfg.layers = 1;
  cfg.ffn_hidden = 32;
  return cfg;
}

TEST(Zero2Dp, ReplicasStartIdentical) {
  Zero2DataParallel dp(dp_config(), 4, 99);
  EXPECT_DOUBLE_EQ(dp.max_replica_divergence(), 0.0);
}

TEST(Zero2Dp, StepMatchesSingleProcessAdam) {
  const auto cfg = dp_config();
  optim::MarkovCorpus corpus(16, 3, 60);
  Rng data_rng(61);
  std::vector<std::vector<int>> batch;
  for (int i = 0; i < 8; ++i) {
    batch.push_back(corpus.sample_sequence(cfg.seq_len + 1, data_rng));
  }

  // Distributed: 4 replicas, ZeRO-2.
  Zero2DataParallel dp(cfg, 4, /*init_seed=*/62);
  const double dp_loss = dp.step(batch, 1e-3f);

  // Reference: one process, full batch, stock Adam.
  Rng init(62);
  optim::TinyGpt reference(cfg, init);
  optim::Adam adam(reference.parameters());
  adam.zero_grad();
  double ref_loss = 0;
  for (const auto& seq : batch) {
    Tensor loss = optim::scale(reference.loss(seq), 1.0f / 8.0f);
    loss.backward();
    ref_loss += loss.item() * 8.0;
  }
  ref_loss /= 8.0;
  adam.step(1e-3f);

  EXPECT_NEAR(dp_loss, ref_loss, 1e-4);
  const Buffer dp_params = dp.flat_params(0);
  const Buffer ref_params = flatten_params(adam.params(), 4);
  ASSERT_EQ(dp_params.size(), ref_params.size());
  for (std::size_t i = 0; i < ref_params.size(); ++i) {
    EXPECT_NEAR(dp_params[i], ref_params[i], 2e-4) << "param " << i;
  }
}

TEST(Zero2Dp, MultiStepStaysInSyncAndConverges) {
  const auto cfg = dp_config();
  optim::MarkovCorpus corpus(16, 3, 70);
  Rng data_rng(71);
  Zero2DataParallel dp(cfg, 2, 72);
  double first = 0, last = 0;
  for (int step = 0; step < 30; ++step) {
    std::vector<std::vector<int>> batch;
    for (int i = 0; i < 4; ++i) {
      batch.push_back(corpus.sample_sequence(cfg.seq_len + 1, data_rng));
    }
    last = dp.step(batch, 3e-3f);
    if (step == 0) first = last;
    ASSERT_LT(dp.max_replica_divergence(), 1e-6) << "step " << step;
  }
  EXPECT_LT(last, first);  // actually learning
}

TEST(Zero2Dp, FlattenRoundTrip) {
  Rng rng(80);
  optim::TinyGpt model(dp_config(), rng);
  auto params = model.parameters();
  Buffer flat = flatten_params(params, 4);
  // Perturb and write back.
  for (auto& x : flat) x += 1.0f;
  unflatten_into_params(flat, params);
  Buffer again = flatten_params(params, 4);
  for (std::size_t i = 0; i + 4 < flat.size(); ++i) {
    EXPECT_FLOAT_EQ(again[i], flat[i]);
  }
}

}  // namespace
}  // namespace ms::dist
