// Coverage for remaining utilities: the logger, table separators, the
// Young/Daly checkpoint-interval optimum, and data-pipeline parameter
// sweeps (TEST_P).
#include <gtest/gtest.h>

#include <cmath>
#include <thread>
#include <vector>

#include "core/log.h"
#include "core/table.h"
#include "data/pipeline.h"
#include "ft/checkpoint.h"

namespace ms {
namespace {

// ------------------------------------------------------------------- log

TEST(Log, LevelThresholdFilters) {
  const LogLevel saved = log_level();
  set_log_level(LogLevel::kError);
  EXPECT_EQ(log_level(), LogLevel::kError);
  // Macros below the threshold must not evaluate their stream arguments.
  int evaluations = 0;
  auto count = [&] {
    ++evaluations;
    return "msg";
  };
  MS_LOG_DEBUG << count();
  MS_LOG_INFO << count();
  MS_LOG_WARN << count();
  EXPECT_EQ(evaluations, 0);
  set_log_level(saved);
}

TEST(Log, MessageEmittedAtOrAboveThreshold) {
  const LogLevel saved = log_level();
  set_log_level(LogLevel::kDebug);
  int evaluations = 0;
  auto count = [&] {
    ++evaluations;
    return "msg";
  };
  MS_LOG_DEBUG << count();
  MS_LOG_ERROR << count();
  EXPECT_EQ(evaluations, 2);
  set_log_level(saved);
}

TEST(Log, SimulatedTimestampPrefixHook) {
  const LogLevel saved = log_level();
  set_log_level(LogLevel::kInfo);
  TimeNs sim_now = seconds(2.5);
  set_log_timestamp_provider([&] { return sim_now; });

  testing::internal::CaptureStderr();
  MS_LOG_INFO << "step done";
  std::string out = testing::internal::GetCapturedStderr();
  EXPECT_NE(out.find("[INFO]"), std::string::npos);
  EXPECT_NE(out.find('[' + format_duration(sim_now) + ']'), std::string::npos);
  EXPECT_NE(out.find("step done"), std::string::npos);

  // Uninstalling the provider drops the prefix again.
  set_log_timestamp_provider(nullptr);
  testing::internal::CaptureStderr();
  MS_LOG_INFO << "no clock";
  out = testing::internal::GetCapturedStderr();
  EXPECT_EQ(out.find(format_duration(sim_now)), std::string::npos);
  set_log_level(saved);
}

TEST(Log, LevelIsAtomicUnderConcurrentToggles) {
  const LogLevel saved = log_level();
  std::vector<std::thread> workers;
  for (int w = 0; w < 4; ++w) {
    workers.emplace_back([w] {
      for (int i = 0; i < 1000; ++i) {
        set_log_level(w % 2 == 0 ? LogLevel::kDebug : LogLevel::kError);
        const LogLevel seen = log_level();
        // Whatever interleaving, the load observes a valid enumerator.
        EXPECT_TRUE(seen == LogLevel::kDebug || seen == LogLevel::kError ||
                    seen == LogLevel::kInfo || seen == LogLevel::kWarn);
      }
    });
  }
  for (auto& t : workers) t.join();
  set_log_level(saved);
}

// ----------------------------------------------------------------- table

TEST(Table, SeparatorRendersFullWidthLine) {
  Table t({"a", "b"});
  t.add_row({"1", "2"});
  t.add_separator();
  t.add_row({"3", "4"});
  const std::string s = t.to_string();
  // header line + top/bottom + separator = at least 4 dashed lines.
  int dashed = 0;
  std::size_t pos = 0;
  while ((pos = s.find("+--", pos)) != std::string::npos) {
    ++dashed;
    pos += 3;
  }
  EXPECT_GE(dashed, 4);
}

// ------------------------------------------------------------ young/daly

TEST(YoungDaly, FormulaMatchesClosedForm) {
  const TimeNs opt = ft::optimal_checkpoint_interval(seconds(0.5), hours(9.0));
  EXPECT_NEAR(to_seconds(opt), std::sqrt(2.0 * 0.5 * 9.0 * 3600.0), 1.0);
}

TEST(YoungDaly, OptimumMinimizesOverhead) {
  const TimeNs stall = seconds(0.5);
  const TimeNs mtbf = hours(9.0);
  const TimeNs opt = ft::optimal_checkpoint_interval(stall, mtbf);
  const double at_opt = ft::checkpoint_overhead_fraction(opt, stall, mtbf);
  for (double factor : {0.25, 0.5, 2.0, 4.0}) {
    const TimeNs other = static_cast<TimeNs>(static_cast<double>(opt) * factor);
    EXPECT_GE(ft::checkpoint_overhead_fraction(other, stall, mtbf), at_opt)
        << "factor " << factor;
  }
}

TEST(YoungDaly, SmallerStallMeansShorterIntervalAndLessOverhead) {
  const TimeNs mtbf = hours(9.0);
  const TimeNs sync_stall = minutes(1.15);
  const TimeNs two_stage_stall = milliseconds(460.0);
  const TimeNs opt_sync = ft::optimal_checkpoint_interval(sync_stall, mtbf);
  const TimeNs opt_fast = ft::optimal_checkpoint_interval(two_stage_stall, mtbf);
  EXPECT_LT(opt_fast, opt_sync);
  EXPECT_LT(ft::checkpoint_overhead_fraction(opt_fast, two_stage_stall, mtbf),
            ft::checkpoint_overhead_fraction(opt_sync, sync_stall, mtbf));
}

// ----------------------------------------------- data pipeline sweep

struct PipelineCase {
  int gpus_per_node;
  int samples;
};

class PipelineSweep : public ::testing::TestWithParam<PipelineCase> {};

TEST_P(PipelineSweep, TreeLoadingAlwaysBeatsRedundant) {
  const auto [gpus, samples] = GetParam();
  data::DataPipelineConfig cfg;
  cfg.gpus_per_node = gpus;
  cfg.samples_per_step = samples;
  cfg.redundant_loaders = true;
  const auto redundant = data::data_step_cost(cfg);
  cfg.redundant_loaders = false;
  const auto tree = data::data_step_cost(cfg);
  EXPECT_LT(tree.exposed, redundant.exposed);
  // Disk traffic ratio approaches the worker count for large steps.
  if (samples >= 64) {
    const double ratio = static_cast<double>(redundant.disk_read) /
                         static_cast<double>(tree.disk_read);
    EXPECT_GT(ratio, gpus * 0.6);
  }
}

TEST_P(PipelineSweep, AsyncAlwaysRemovesPreprocessFromExposure) {
  const auto [gpus, samples] = GetParam();
  data::DataPipelineConfig cfg;
  cfg.gpus_per_node = gpus;
  cfg.samples_per_step = samples;
  cfg.async_preprocessing = false;
  const auto sync_cost = data::data_step_cost(cfg);
  cfg.async_preprocessing = true;
  const auto async_cost = data::data_step_cost(cfg);
  EXPECT_EQ(sync_cost.exposed - async_cost.exposed, sync_cost.preprocess);
}

INSTANTIATE_TEST_SUITE_P(
    Grid, PipelineSweep,
    ::testing::Values(PipelineCase{4, 32}, PipelineCase{8, 64},
                      PipelineCase{8, 256}, PipelineCase{16, 128}),
    [](const auto& info) {
      return "g" + std::to_string(info.param.gpus_per_node) + "s" +
             std::to_string(info.param.samples);
    });

}  // namespace
}  // namespace ms
