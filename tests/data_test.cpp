#include <gtest/gtest.h>

#include <atomic>
#include <thread>

#include "data/pipeline.h"
#include "data/shm.h"

namespace ms::data {
namespace {

// --------------------------------------------------------- pipeline model

DataPipelineConfig stock() {
  DataPipelineConfig cfg;
  cfg.redundant_loaders = true;
  cfg.async_preprocessing = false;
  return cfg;
}

DataPipelineConfig megascale() {
  DataPipelineConfig cfg;
  cfg.redundant_loaders = false;
  cfg.async_preprocessing = true;
  return cfg;
}

TEST(Pipeline, RedundantLoadersMultiplyDiskTraffic) {
  const auto slow = data_step_cost(stock());
  const auto fast = data_step_cost(megascale());
  // 8 workers re-reading identical bytes: ~8x disk time.
  const double ratio = static_cast<double>(slow.disk_read) /
                       static_cast<double>(fast.disk_read);
  EXPECT_GT(ratio, 6.0);
  EXPECT_LT(ratio, 10.0);
}

TEST(Pipeline, TreeLoadingPaysShmCopy) {
  const auto fast = data_step_cost(megascale());
  EXPECT_GT(fast.shm_copy, 0);
  const auto slow = data_step_cost(stock());
  EXPECT_EQ(slow.shm_copy, 0);
}

TEST(Pipeline, AsyncPreprocessingLeavesCriticalPath) {
  auto cfg = stock();
  const auto sync_cost = data_step_cost(cfg);
  cfg.async_preprocessing = true;
  const auto async_cost = data_step_cost(cfg);
  EXPECT_EQ(sync_cost.exposed - async_cost.exposed, sync_cost.preprocess);
  EXPECT_EQ(async_cost.preprocess, sync_cost.preprocess);  // still happens
}

TEST(Pipeline, FullOptimizationDramaticallyShrinksExposedTime) {
  const auto slow = data_step_cost(stock());
  const auto fast = data_step_cost(megascale());
  EXPECT_LT(fast.exposed * 4, slow.exposed);
}

TEST(Pipeline, CostsScaleWithSamples) {
  auto cfg = megascale();
  const auto small = data_step_cost(cfg);
  cfg.samples_per_step *= 4;
  const auto large = data_step_cost(cfg);
  EXPECT_GT(large.disk_read, 3 * small.disk_read);
}

TEST(Pipeline, MoreCpuWorkersSpeedUpPreprocess) {
  auto cfg = stock();
  cfg.cpu_workers = 4;
  const auto few = data_step_cost(cfg);
  cfg.cpu_workers = 32;
  const auto many = data_step_cost(cfg);
  EXPECT_LT(many.preprocess, few.preprocess);
}

// --------------------------------------------------------------- shm real

TEST(Shm, AllConsumersReceiveIdenticalBatch) {
  constexpr int kConsumers = 8;
  ShmBroadcastBuffer buffer(kConsumers);
  const std::vector<std::uint8_t> batch{1, 2, 3, 4, 5};

  std::vector<std::thread> consumers;
  std::atomic<int> matches{0};
  for (int c = 0; c < kConsumers; ++c) {
    consumers.emplace_back([&] {
      if (buffer.fetch(0) == batch) matches.fetch_add(1);
    });
  }
  EXPECT_TRUE(buffer.publish(batch));
  for (auto& t : consumers) t.join();
  EXPECT_EQ(matches.load(), kConsumers);
}

TEST(Shm, GenerationsDeliveredInOrder) {
  constexpr int kConsumers = 4, kBatches = 20;
  ShmBroadcastBuffer buffer(kConsumers);

  std::vector<std::thread> consumers;
  std::atomic<int> failures{0};
  for (int c = 0; c < kConsumers; ++c) {
    consumers.emplace_back([&] {
      for (int g = 0; g < kBatches; ++g) {
        auto batch = buffer.fetch(g);
        if (batch.size() != 1 || batch[0] != static_cast<std::uint8_t>(g)) {
          failures.fetch_add(1);
        }
      }
    });
  }
  for (int g = 0; g < kBatches; ++g) {
    ASSERT_TRUE(buffer.publish({static_cast<std::uint8_t>(g)}));
  }
  for (auto& t : consumers) t.join();
  EXPECT_EQ(failures.load(), 0);
  EXPECT_EQ(buffer.published(), kBatches);
}

TEST(Shm, ProducerRunsAheadByDoubleBuffering) {
  // With 2 slots and no consumer, exactly 2 publishes must succeed without
  // blocking; verify by publishing from a thread and checking progress.
  ShmBroadcastBuffer buffer(1, 2);
  EXPECT_TRUE(buffer.publish({0}));
  EXPECT_TRUE(buffer.publish({1}));
  EXPECT_EQ(buffer.published(), 2);
  // Third publish must block until a consumer frees a slot.
  std::atomic<bool> third_done{false};
  std::thread producer([&] {
    buffer.publish({2});
    third_done = true;
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_FALSE(third_done.load());
  EXPECT_EQ(buffer.fetch(0), std::vector<std::uint8_t>{0});
  producer.join();
  EXPECT_TRUE(third_done.load());
}

TEST(Shm, CloseUnblocksConsumers) {
  ShmBroadcastBuffer buffer(1);
  std::thread consumer([&] {
    auto batch = buffer.fetch(0);
    EXPECT_TRUE(batch.empty());
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  buffer.close();
  consumer.join();
}

TEST(Shm, CloseUnblocksProducer) {
  ShmBroadcastBuffer buffer(1, 1);
  ASSERT_TRUE(buffer.publish({0}));
  std::thread producer([&] {
    EXPECT_FALSE(buffer.publish({1}));  // blocked, then closed
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  buffer.close();
  producer.join();
}

TEST(Shm, FetchAfterCloseStillServesPublishedGeneration) {
  ShmBroadcastBuffer buffer(1, 2);
  ASSERT_TRUE(buffer.publish({42}));
  buffer.close();
  EXPECT_EQ(buffer.fetch(0), std::vector<std::uint8_t>{42});
}

TEST(Shm, StressManyGenerationsManyConsumers) {
  constexpr int kConsumers = 6, kBatches = 200;
  ShmBroadcastBuffer buffer(kConsumers, 3);
  std::atomic<std::int64_t> checksum{0};
  std::vector<std::thread> consumers;
  for (int c = 0; c < kConsumers; ++c) {
    consumers.emplace_back([&] {
      for (int g = 0; g < kBatches; ++g) {
        auto batch = buffer.fetch(g);
        std::int64_t sum = 0;
        for (auto b : batch) sum += b;
        checksum.fetch_add(sum);
      }
    });
  }
  std::int64_t expected = 0;
  for (int g = 0; g < kBatches; ++g) {
    std::vector<std::uint8_t> batch(64, static_cast<std::uint8_t>(g % 251));
    for (auto b : batch) expected += b;
    ASSERT_TRUE(buffer.publish(std::move(batch)));
  }
  for (auto& t : consumers) t.join();
  EXPECT_EQ(checksum.load(), expected * kConsumers);
}

}  // namespace
}  // namespace ms::data
