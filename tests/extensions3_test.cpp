// Tests for the third extension batch: dynamic loss scaling, activation
// recomputation, and the launch-skew analyzer.
#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "diag/skew.h"
#include "engine/job.h"
#include "model/memory.h"
#include "optim/schedule.h"

namespace ms {
namespace {

// ------------------------------------------------------------ loss scaler

TEST(LossScaler, OverflowHalvesAndSkips) {
  optim::DynamicLossScaler scaler(1024.0f);
  EXPECT_FALSE(scaler.update(/*overflow=*/true));
  EXPECT_FLOAT_EQ(scaler.scale(), 512.0f);
  EXPECT_EQ(scaler.steps_skipped(), 1);
}

TEST(LossScaler, GrowsAfterCleanInterval) {
  optim::DynamicLossScaler scaler(1024.0f, /*growth_interval=*/4);
  for (int i = 0; i < 3; ++i) {
    EXPECT_TRUE(scaler.update(false));
    EXPECT_FLOAT_EQ(scaler.scale(), 1024.0f);
  }
  EXPECT_TRUE(scaler.update(false));  // 4th clean step doubles
  EXPECT_FLOAT_EQ(scaler.scale(), 2048.0f);
}

TEST(LossScaler, OverflowResetsGrowthCounter) {
  optim::DynamicLossScaler scaler(1024.0f, 3);
  scaler.update(false);
  scaler.update(false);
  scaler.update(true);  // halves, resets counter
  EXPECT_FLOAT_EQ(scaler.scale(), 512.0f);
  scaler.update(false);
  scaler.update(false);
  EXPECT_FLOAT_EQ(scaler.scale(), 512.0f);  // not yet 3 clean steps
  scaler.update(false);
  EXPECT_FLOAT_EQ(scaler.scale(), 1024.0f);
}

TEST(LossScaler, ScaleClampedToBounds) {
  optim::DynamicLossScaler scaler(2.0f, 1, /*min=*/1.0f, /*max=*/4.0f);
  scaler.update(true);
  scaler.update(true);
  EXPECT_FLOAT_EQ(scaler.scale(), 1.0f);  // clamped at min
  scaler.update(false);
  scaler.update(false);
  scaler.update(false);
  EXPECT_FLOAT_EQ(scaler.scale(), 4.0f);  // clamped at max
}

TEST(LossScaler, DetectsNonFiniteGradients) {
  auto w = optim::Tensor::from({1.0f, 2.0f}, {2}, true);
  w.grad()[0] = 1.0f;
  std::vector<optim::Param> params{{"w", w}};
  EXPECT_FALSE(optim::DynamicLossScaler::gradients_overflowed(params));
  w.grad()[1] = std::numeric_limits<float>::infinity();
  EXPECT_TRUE(optim::DynamicLossScaler::gradients_overflowed(params));
  w.grad()[1] = std::nanf("");
  EXPECT_TRUE(optim::DynamicLossScaler::gradients_overflowed(params));
}

TEST(LossScaler, UnscaleDividesGradients) {
  auto w = optim::Tensor::from({0.0f}, {1}, true);
  w.grad()[0] = 2048.0f;
  std::vector<optim::Param> params{{"w", w}};
  optim::DynamicLossScaler scaler(1024.0f);
  scaler.unscale(params);
  EXPECT_FLOAT_EQ(w.grad()[0], 2.0f);
}

// ------------------------------------------------------ recompute option

engine::JobConfig recompute_config() {
  engine::JobConfig cfg;
  cfg.model = model::config_175b();
  cfg.model.parallel_block = true;
  cfg.par = parallel::ParallelConfig{.tp = 8, .pp = 8, .dp = 4, .vpp = 6};
  cfg.global_batch = 256;
  cfg.ops = model::OperatorProfile::megascale();
  cfg.overlap = engine::OverlapOptions::megascale();
  return cfg;
}

TEST(Recompute, CostsRoughlyOneExtraForward) {
  auto cfg = recompute_config();
  const auto base = engine::simulate_iteration(cfg);
  cfg.full_recompute = true;
  const auto recompute = engine::simulate_iteration(cfg);
  const double ratio = to_seconds(recompute.iteration_time) /
                       to_seconds(base.iteration_time);
  // fwd:bwd ~ 1:2 => adding one fwd to bwd ~ +33% on the pipeline body.
  EXPECT_GT(ratio, 1.15);
  EXPECT_LT(ratio, 1.45);
  EXPECT_LT(recompute.mfu, base.mfu);
}

TEST(Recompute, CutsActivationMemoryByTheFactorRatio) {
  parallel::ParallelConfig par{.tp = 8, .pp = 8, .dp = 4, .vpp = 1};
  model::MemoryConfig selective;
  selective.activation_factor = model::MemoryConfig::kSelectiveRecompute;
  model::MemoryConfig full;
  full.activation_factor = model::MemoryConfig::kFullRecompute;
  const auto cfg = model::config_175b();
  const auto mem_sel = model::peak_memory(cfg, par, 8, selective);
  const auto mem_full = model::peak_memory(cfg, par, 8, full);
  EXPECT_NEAR(mem_sel.activations / mem_full.activations, 17.0, 0.01);
  EXPECT_DOUBLE_EQ(mem_sel.weights, mem_full.weights);
}

// ------------------------------------------------------------ skew tool

TEST(Skew, NoSkewOnSynchronizedRanks) {
  diag::LaunchSkewAnalyzer analyzer;
  for (int step = 0; step < 50; ++step) {
    for (int rank = 0; rank < 4; ++rank) {
      analyzer.record(step, rank, step * seconds(10.0));
    }
  }
  EXPECT_EQ(analyzer.skew_at(10), 0);
  EXPECT_NEAR(analyzer.skew_growth_per_step(), 0.0, 1e-12);
  EXPECT_TRUE(analyzer.drifting_ranks(1e-6).empty());
}

TEST(Skew, BoundedJitterHasNoTrend) {
  diag::LaunchSkewAnalyzer analyzer;
  Rng rng(1);
  for (int step = 0; step < 200; ++step) {
    for (int rank = 0; rank < 4; ++rank) {
      analyzer.record(step, rank,
                      step * seconds(10.0) +
                          static_cast<TimeNs>(rng.uniform(0, 1e6)));
    }
  }
  EXPECT_LT(std::fabs(analyzer.skew_growth_per_step()), 2e-6);
}

TEST(Skew, GrowingStaggerDetected) {
  // The §6.3 pathology: one rank's launch offset random-walks away.
  diag::LaunchSkewAnalyzer analyzer;
  Rng rng(2);
  double drift = 0.0;
  for (int step = 0; step < 300; ++step) {
    for (int rank = 0; rank < 4; ++rank) {
      TimeNs t = step * seconds(10.0);
      if (rank == 2) t += seconds(drift);
      analyzer.record(step, rank, t);
    }
    drift += std::fabs(rng.normal(0.0, 0.002));  // growing stagger
  }
  EXPECT_GT(analyzer.skew_growth_per_step(), 1e-4);
  const auto drifting = analyzer.drifting_ranks(1e-4);
  ASSERT_EQ(drifting.size(), 1u);
  EXPECT_EQ(drifting[0], 2);
}

TEST(Skew, SkewAtMatchesMaxMinusMin) {
  diag::LaunchSkewAnalyzer analyzer;
  analyzer.record(5, 0, seconds(1.0));
  analyzer.record(5, 1, seconds(1.2));
  analyzer.record(5, 2, seconds(0.9));
  EXPECT_EQ(analyzer.skew_at(5), seconds(0.3));
  EXPECT_EQ(analyzer.skew_at(99), 0);  // unknown step
}

}  // namespace
}  // namespace ms
