// Tests for the calibration & trace-replay frontend (`msdiag calibrate`):
// the least-squares core (degenerate systems diagnosed, never NaN), trace
// ingestion across both artifact families (span JSONL and quirky
// Kineto/Chrome JSON), span classification, the round-trip acceptance gate
// (emit with known parameters -> fit recovers them within 1% -> replay
// within tolerance), determinism digests, golden-fixture agreement, metric
// export, dashboard integration, and the CLI entry point.
#include <gtest/gtest.h>

#include <cmath>
#include <sstream>
#include <string>
#include <vector>

#include "calib/calibrate_cli.h"
#include "calib/classify.h"
#include "calib/fit.h"
#include "calib/ingest.h"
#include "calib/lsq.h"
#include "calib/replay.h"
#include "core/json.h"
#include "diag/artifact.h"
#include "engine/job.h"
#include "telemetry/dashboard.h"
#include "telemetry/exporters.h"
#include "telemetry/metrics.h"
#include "telemetry/trace.h"

namespace {

using namespace ms;

// The off-nominal "true" parameters every round-trip test generates with
// (matching the committed golden fixtures and the --emit defaults).
constexpr double kTrueGemm = 0.65;
constexpr double kTrueAttn = 0.50;
constexpr double kTrueMem = 0.95;
constexpr double kTrueNet = 0.85;

std::vector<diag::TraceSpan> emit_fixture_trace(double gemm = kTrueGemm,
                                                double attn = kTrueAttn,
                                                double mem = kTrueMem,
                                                double net = kTrueNet) {
  engine::JobConfig cfg = calib::fixture_config();
  cfg.ops.gemm_efficiency = gemm;
  cfg.ops.attention_efficiency = attn;
  cfg.ops.flash_attention2_efficiency = attn;
  cfg.cluster.gpu.hbm_bw *= mem;
  cfg.network_efficiency = net;
  EXPECT_EQ(engine::validate(cfg), "");
  telemetry::Tracer tracer;
  cfg.tracer = &tracer;
  engine::simulate_iteration(cfg);
  return tracer.spans();
}

std::string temp_path(const std::string& name) {
  return testing::TempDir() + "/" + name;
}

bool all_params_finite(const calib::CalibrationReport& r) {
  if (!std::isfinite(r.ops.gemm_efficiency) ||
      !std::isfinite(r.ops.attention_efficiency) ||
      !std::isfinite(r.ops.memory_efficiency) ||
      !std::isfinite(r.fit_rel_rms)) {
    return false;
  }
  for (const auto& f : r.coll) {
    if (!std::isfinite(static_cast<double>(f.alpha)) ||
        !std::isfinite(f.bandwidth)) {
      return false;
    }
  }
  for (const auto& res : r.residuals) {
    if (!std::isfinite(res.rel_rms) || !std::isfinite(res.worst_rel)) {
      return false;
    }
  }
  return true;
}

// ------------------------------------------------------------ least squares

TEST(CalibLsq, SolvesWellPosedSystemExactly) {
  const std::vector<std::vector<double>> rows = {{1, 0}, {0, 1}, {1, 1}};
  const std::vector<double> y = {2, 3, 5};
  const calib::LsqResult sol = calib::solve_least_squares(rows, y);
  ASSERT_TRUE(sol.ok);
  EXPECT_FALSE(sol.degenerate);
  EXPECT_EQ(sol.rank, 2);
  ASSERT_EQ(sol.x.size(), 2u);
  EXPECT_NEAR(sol.x[0], 2.0, 1e-9);
  EXPECT_NEAR(sol.x[1], 3.0, 1e-9);
}

TEST(CalibLsq, EmptySystemIsDiagnosedNotNan) {
  const calib::LsqResult sol = calib::solve_least_squares({}, {});
  EXPECT_FALSE(sol.ok);
  EXPECT_EQ(sol.error, "no samples");
}

TEST(CalibLsq, ShapeMismatchesAreDiagnosed) {
  EXPECT_EQ(calib::solve_least_squares({{1.0, 2.0}}, {1.0, 2.0}).error,
            "rows/targets size mismatch");
  EXPECT_EQ(calib::solve_least_squares({{}}, {1.0}).error, "no unknowns");
  EXPECT_EQ(
      calib::solve_least_squares({{1.0, 2.0}, {1.0}}, {1.0, 2.0}).error,
      "ragged design matrix");
}

TEST(CalibLsq, CollinearColumnsDegenerateButFinite) {
  // Second column is 2x the first: rank 1 of 2. The ridge fallback must
  // keep the solution finite and flag the degeneracy.
  const std::vector<std::vector<double>> rows = {{1, 2}, {2, 4}, {3, 6}};
  const std::vector<double> y = {5, 10, 15};
  const calib::LsqResult sol = calib::solve_least_squares(rows, y);
  ASSERT_TRUE(sol.ok);
  EXPECT_TRUE(sol.degenerate);
  EXPECT_TRUE(sol.ridge_used);
  EXPECT_EQ(sol.rank, 1);
  for (double v : sol.x) EXPECT_TRUE(std::isfinite(v));
  // The fit still explains the data along the identifiable direction.
  EXPECT_NEAR(sol.x[0] + 2 * sol.x[1], 5.0, 1e-3);
}

TEST(CalibLsq, AllZeroDesignStaysFinite) {
  const calib::LsqResult sol =
      calib::solve_least_squares({{0, 0}, {0, 0}}, {1, 2});
  if (sol.ok) {
    for (double v : sol.x) EXPECT_TRUE(std::isfinite(v));
    EXPECT_TRUE(sol.degenerate);
  } else {
    EXPECT_FALSE(sol.error.empty());
  }
}

// -------------------------------------------------------------- JSON quirks

TEST(CalibJson, ParsesNanAndInfinityLiterals) {
  // Kineto counter events carry bare NaN/Infinity tokens (Python's
  // json.dump default); the parser must accept them.
  json::Value v;
  ASSERT_TRUE(json::parse(
      R"({"a": NaN, "b": Infinity, "c": -Infinity, "d": 1.5})", v));
  EXPECT_TRUE(std::isnan(v.at("a").number));
  EXPECT_TRUE(std::isinf(v.at("b").number));
  EXPECT_GT(v.at("b").number, 0);
  EXPECT_TRUE(std::isinf(v.at("c").number));
  EXPECT_LT(v.at("c").number, 0);
  EXPECT_DOUBLE_EQ(v.at("d").number, 1.5);
  // Malformed keywords still fail.
  json::Value bad;
  EXPECT_FALSE(json::parse(R"({"a": Nan})", bad));
  EXPECT_FALSE(json::parse(R"({"a": Infinit})", bad));
}

// ---------------------------------------------------------------- ingestion

TEST(CalibIngest, SpanJsonlRoundTripsThroughDetection) {
  const auto spans = emit_fixture_trace();
  ASSERT_FALSE(spans.empty());
  const std::string text = telemetry::jsonl_spans(spans);
  EXPECT_EQ(calib::detect_trace_format(text), calib::TraceFormat::kSpanJsonl);

  calib::IngestResult result;
  std::string error;
  ASSERT_TRUE(calib::ingest_trace(text, result, error)) << error;
  ASSERT_EQ(result.spans.size(), spans.size());
  EXPECT_EQ(result.skipped_events, 0u);
  EXPECT_EQ(result.spans.front().name, spans.front().name);
  EXPECT_EQ(result.spans.front().start, spans.front().start);
  EXPECT_EQ(result.spans.front().detail, spans.front().detail);
}

TEST(CalibIngest, ChromeTraceToleratesKinetoQuirks) {
  // String pids, metadata/instant/counter events, a NaN counter value, a
  // B/E pair, fractional-us timestamps, a missing dur, an unknown phase,
  // and an orphan E — all tolerated, none fatal.
  const std::string text = R"JSON({
    "schemaVersion": 1,
    "traceEvents": [
      {"ph": "M", "name": "process_name", "pid": "rank 3",
       "args": {"name": "python 4021"}},
      {"ph": "C", "name": "GPU Utilization", "pid": "rank 3", "ts": 0.0,
       "args": {"GPU Utilization": NaN}},
      {"ph": "i", "name": "marker", "pid": "rank 3", "tid": "stream 7",
       "ts": 0.5},
      {"ph": "B", "name": "ProfilerStep#0", "pid": "rank 3", "tid": "step",
       "ts": 0.0},
      {"ph": "X", "name": "fwd", "cat": "fwd", "pid": "rank 3",
       "tid": "stream 0", "ts": 1.5, "dur": 2.25,
       "args": {"detail": "s=0 c=0 mb=0 p=f", "External id": 7}},
      {"ph": "E", "name": "ProfilerStep#0", "pid": "rank 3", "tid": "step",
       "ts": 10.0},
      {"ph": "X", "name": "cudaDeviceSynchronize", "pid": "rank 3",
       "tid": "runtime", "ts": 10.0},
      {"ph": "Q", "name": "bogus", "pid": 1, "ts": 0},
      {"ph": "E", "name": "orphan", "pid": 9, "tid": 1, "ts": 3.0}
    ]})JSON";
  EXPECT_EQ(calib::detect_trace_format(text),
            calib::TraceFormat::kChromeTrace);

  calib::IngestResult result;
  std::string error;
  ASSERT_TRUE(calib::ingest_trace(text, result, error)) << error;
  // Kept: the X fwd span, the closed B/E pair, the dur-less X.
  ASSERT_EQ(result.spans.size(), 3u);
  // Skipped: M, C, i, unknown "Q", orphan E.
  EXPECT_EQ(result.skipped_events, 5u);
  EXPECT_FALSE(result.warnings.empty());

  const diag::TraceSpan& fwd = result.spans[0];
  EXPECT_EQ(fwd.name, "fwd");
  EXPECT_EQ(fwd.tag, "fwd");
  EXPECT_EQ(fwd.rank, 3);  // "rank 3" resolves to its digit run
  EXPECT_EQ(fwd.start, 1500);
  EXPECT_EQ(fwd.end, 1500 + 2250);
  // args flattened into the detail grammar: verbatim "detail" plus the
  // sanitized "External id" key.
  EXPECT_NE(fwd.detail.find("p=f"), std::string::npos);
  EXPECT_NE(fwd.detail.find("External_id=7"), std::string::npos);

  const diag::TraceSpan& step = result.spans[1];
  EXPECT_EQ(step.name, "ProfilerStep#0");
  EXPECT_EQ(step.start, 0);
  EXPECT_EQ(step.end, 10000);

  const diag::TraceSpan& sync = result.spans[2];
  EXPECT_EQ(sync.name, "cudaDeviceSynchronize");
  EXPECT_EQ(sync.start, sync.end);  // missing dur -> zero-length span
}

TEST(CalibIngest, BareEventArrayIsAccepted) {
  calib::IngestResult result;
  std::string error;
  ASSERT_TRUE(calib::ingest_trace(
      R"([{"ph": "X", "name": "aten::mm", "pid": 0, "ts": 1, "dur": 2}])",
      result, error))
      << error;
  ASSERT_EQ(result.spans.size(), 1u);
  EXPECT_EQ(result.spans[0].name, "aten::mm");
}

TEST(CalibIngest, UnknownFormatIsAnError) {
  calib::IngestResult result;
  std::string error;
  EXPECT_FALSE(calib::ingest_trace("not a trace at all", result, error));
  EXPECT_NE(error.find("unrecognized"), std::string::npos);
  EXPECT_FALSE(calib::ingest_trace_file(temp_path("does_not_exist.jsonl"),
                                        result, error));
  EXPECT_NE(error.find("cannot read"), std::string::npos);
}

// ----------------------------------------------------------- classification

diag::TraceSpan make_span(std::string name, std::string tag,
                          std::string detail, TimeNs start = 0,
                          TimeNs end = 1000) {
  diag::TraceSpan s;
  s.name = std::move(name);
  s.tag = std::move(tag);
  s.detail = std::move(detail);
  s.start = start;
  s.end = end;
  return s;
}

TEST(CalibClassify, EngineComputeSpansMapToOpClasses) {
  const std::vector<diag::TraceSpan> spans = {
      make_span("fwd", "fwd", "s=0 c=0 mb=0 p=f"),
      make_span("fwd", "fwd", "s=3 c=1 mb=0 p=f head=1"),
      make_span("bwd", "bwd", "s=0 c=0 mb=0 p=b"),
      make_span("bwd", "bwd", "s=3 c=1 mb=0 p=b head=1"),
      make_span("optimizer", "optimizer", "s=0"),
  };
  const calib::Classification cls = calib::classify_spans(spans);
  EXPECT_EQ(cls.operators, 5u);
  EXPECT_EQ(cls.spans[0].label, "fwd");
  EXPECT_EQ(cls.spans[1].label, "fwd+head");
  EXPECT_EQ(cls.spans[2].label, "bwd");
  EXPECT_EQ(cls.spans[3].label, "bwd+head");
  EXPECT_EQ(cls.spans[4].label, "optimizer");
  EXPECT_EQ(cls.spans[1].op, calib::OpClass::kFwdHead);
  EXPECT_EQ(cls.spans[4].op, calib::OpClass::kOptimizer);
}

TEST(CalibClassify, OpAttributeNamesTheWireCollective) {
  // ZeRO stage <= 1: the span keeps its "dp-reducescatter" name (the
  // DepGraph matches on it) but the wire op is an all-reduce, carried in
  // the `op=` attribute — which must win over the name.
  const std::vector<diag::TraceSpan> spans = {
      make_span("dp-reducescatter", "dp-comm",
                "s=0 grp=dp n=4 op=allreduce B=1048576")};
  const calib::Classification cls = calib::classify_spans(spans);
  ASSERT_EQ(cls.collectives, 1u);
  EXPECT_EQ(cls.spans[0].coll, calib::CollOp::kAllReduce);
  EXPECT_EQ(cls.spans[0].ranks, 4);
  EXPECT_EQ(cls.spans[0].bytes, 1048576);
  EXPECT_EQ(cls.spans[0].label, "allreduce/n=4/inter");
}

TEST(CalibClassify, BucketedCollectiveCarriesCallCount) {
  const std::vector<diag::TraceSpan> spans = {
      make_span("dp-allgather", "dp-comm",
                "grp=dp n=4 op=allgather B=4096 calls=2")};
  const calib::Classification cls = calib::classify_spans(spans);
  ASSERT_EQ(cls.collectives, 1u);
  EXPECT_EQ(cls.spans[0].calls, 2);
  // Design row scales with the call count: one call of allgather over 4
  // ranks is 3 alpha hops; two calls are 6.
  const calib::CollDesignRow row = calib::coll_design_row(cls.spans[0]);
  EXPECT_DOUBLE_EQ(row.lat_coeff, 6.0);
  EXPECT_DOUBLE_EQ(row.byte_coeff, 2.0 * 3.0 / 4.0 * 4096.0);
}

TEST(CalibClassify, DesignRowsFollowRingFormulas) {
  calib::ClassifiedSpan s;
  s.kind = calib::ClassifiedSpan::Kind::kCollective;
  s.ranks = 4;
  s.bytes = 1000;
  s.calls = 1;
  s.coll = calib::CollOp::kAllReduce;
  calib::CollDesignRow row = calib::coll_design_row(s);
  EXPECT_DOUBLE_EQ(row.lat_coeff, 6.0);           // 2(n-1)
  EXPECT_DOUBLE_EQ(row.byte_coeff, 1500.0);       // 2(n-1)/n * S
  s.coll = calib::CollOp::kP2p;
  s.ranks = 2;
  row = calib::coll_design_row(s);
  EXPECT_DOUBLE_EQ(row.lat_coeff, 1.0);
  EXPECT_DOUBLE_EQ(row.byte_coeff, 1000.0);
}

TEST(CalibClassify, RecvSideIsNotDoubleCounted) {
  const std::vector<diag::TraceSpan> spans = {
      make_span("recv", "pp-comm", "p=f mb=0 from=0 to=1 c=0 B=4096"),
      make_span("send", "pp-comm", "p=f mb=0 from=0 to=1 c=0 B=4096")};
  const calib::Classification cls = calib::classify_spans(spans);
  EXPECT_EQ(cls.spans[0].kind, calib::ClassifiedSpan::Kind::kOther);
  EXPECT_EQ(cls.spans[0].label, "recv");
  EXPECT_EQ(cls.spans[1].kind, calib::ClassifiedSpan::Kind::kCollective);
  EXPECT_EQ(cls.spans[1].coll, calib::CollOp::kP2p);
}

TEST(CalibClassify, UnsizedCollectivesCountAsCoverageLoss) {
  const std::vector<diag::TraceSpan> spans = {
      make_span("ncclKernel_AllReduce_RING_LL_Sum_float", "kernel", "")};
  const calib::Classification cls = calib::classify_spans(spans);
  EXPECT_EQ(cls.collectives, 0u);
  EXPECT_EQ(cls.unusable_collectives, 1u);
  EXPECT_EQ(cls.spans[0].label, "comm:allreduce/unsized");
}

TEST(CalibClassify, KernelKeywordsGiveCoverageLabels) {
  const std::vector<diag::TraceSpan> spans = {
      make_span("aten::mm", "", ""),
      make_span("flash_fwd_kernel", "", ""),
      make_span("vectorized_layer_norm_kernel", "", ""),
      make_span("multi_tensor_apply_adam", "", ""),
      make_span("Memcpy DtoH", "", ""),
      make_span("mystery_kernel_42", "", ""),
  };
  const calib::Classification cls = calib::classify_spans(spans);
  EXPECT_EQ(cls.spans[0].label, "kernel:gemm");
  EXPECT_EQ(cls.spans[1].label, "kernel:attention");
  EXPECT_EQ(cls.spans[2].label, "kernel:elementwise");
  EXPECT_EQ(cls.spans[3].label, "kernel:optimizer");
  EXPECT_EQ(cls.spans[4].label, "kernel:memcpy");
  EXPECT_EQ(cls.spans[5].label, "other");
  EXPECT_EQ(cls.other, spans.size());
}

// --------------------------------------------------- fit: round-trip gate

TEST(CalibFit, RoundTripRecoversGeneratingParametersWithinOnePercent) {
  const auto spans = emit_fixture_trace();
  const engine::JobConfig base = calib::fixture_config();
  const calib::CalibrationReport report = calib::fit_trace(spans, base);
  ASSERT_TRUE(report.ok) << report.error;
  ASSERT_TRUE(report.ops.fitted);
  EXPECT_FALSE(report.ops.degenerate);

  EXPECT_NEAR(report.ops.gemm_efficiency, kTrueGemm, 0.01 * kTrueGemm);
  EXPECT_NEAR(report.ops.attention_efficiency, kTrueAttn, 0.01 * kTrueAttn);
  EXPECT_NEAR(report.ops.memory_efficiency, kTrueMem, 0.01 * kTrueMem);

  // The fixture's communication is all inter-node (tp=1): fitted alpha-beta
  // must match the cluster spec the trace was generated from.
  ASSERT_EQ(report.coll.size(), 1u);
  const calib::CollectiveFit& inter = report.coll.front();
  EXPECT_EQ(inter.domain, collective::Domain::kInterNode);
  ASSERT_TRUE(inter.fitted);
  EXPECT_FALSE(inter.degenerate);
  const double true_alpha = static_cast<double>(base.cluster.net_latency);
  const double true_bw = kTrueNet * base.cluster.nic_bw;
  EXPECT_NEAR(static_cast<double>(inter.alpha), true_alpha,
              0.01 * true_alpha);
  EXPECT_NEAR(inter.bandwidth, true_bw, 0.01 * true_bw);

  // The generator and the feature model are the same code: residuals are
  // numerically tiny, and far below the 1% recovery bar.
  EXPECT_LT(report.fit_rel_rms, 0.01);
  EXPECT_GT(report.spans_fitted, 0u);
  EXPECT_LT(report.spans_fitted, report.spans_total);

  bool saw_fwd = false, saw_p2p = false;
  for (const auto& r : report.residuals) {
    if (r.cls == "fwd") saw_fwd = r.fitted;
    if (r.cls == "p2p/inter") saw_p2p = r.fitted;
  }
  EXPECT_TRUE(saw_fwd);
  EXPECT_TRUE(saw_p2p);
}

TEST(CalibFit, DigestIsStableAcrossIndependentRuns) {
  const engine::JobConfig base = calib::fixture_config();
  const calib::CalibrationReport a =
      calib::fit_trace(emit_fixture_trace(), base);
  const calib::CalibrationReport b =
      calib::fit_trace(emit_fixture_trace(), base);
  ASSERT_TRUE(a.ok);
  ASSERT_TRUE(b.ok);
  EXPECT_NE(a.digest, 0u);
  EXPECT_EQ(a.digest, b.digest);
  EXPECT_EQ(a.spans_fitted, b.spans_fitted);
}

TEST(CalibFit, EmptyTraceIsDiagnosed) {
  const calib::CalibrationReport report =
      calib::fit_trace({}, calib::fixture_config());
  EXPECT_FALSE(report.ok);
  EXPECT_NE(report.error.find("empty trace"), std::string::npos);
  EXPECT_TRUE(all_params_finite(report));
}

TEST(CalibFit, InvalidBaseConfigIsDiagnosed) {
  engine::JobConfig bad = calib::fixture_config();
  bad.par.pp = 7;  // 13B layer count is not divisible by 7 stages
  const calib::CalibrationReport report =
      calib::fit_trace(emit_fixture_trace(), bad);
  EXPECT_FALSE(report.ok);
  EXPECT_NE(report.error.find("invalid base config"), std::string::npos);
}

TEST(CalibFit, OneClassTraceIsDegenerateNeverNan) {
  // Only plain fwd spans: one feature row for three unknowns. The fit must
  // flag the rank deficiency and still return finite parameters.
  std::vector<diag::TraceSpan> fwd_only;
  for (const auto& s : emit_fixture_trace()) {
    if (s.tag == "fwd" && s.detail.find("head=") == std::string::npos) {
      fwd_only.push_back(s);
    }
  }
  ASSERT_FALSE(fwd_only.empty());
  const calib::CalibrationReport report =
      calib::fit_trace(fwd_only, calib::fixture_config());
  ASSERT_TRUE(report.ok) << report.error;
  ASSERT_TRUE(report.ops.fitted);
  EXPECT_TRUE(report.ops.degenerate);
  EXPECT_TRUE(report.ops.ridge_used);
  EXPECT_NE(report.ops.note.find("ridge"), std::string::npos);
  EXPECT_TRUE(report.coll.empty());
  EXPECT_TRUE(all_params_finite(report));
}

TEST(CalibFit, SingleShapeCollectiveIsDegenerateNeverNan) {
  // Only p2p sends of one message size: alpha and 1/bandwidth are
  // collinear. Whatever the ridge produces must be flagged and finite.
  std::vector<diag::TraceSpan> sends;
  for (const auto& s : emit_fixture_trace()) {
    if (s.tag == "pp-comm" && s.name == "send") sends.push_back(s);
  }
  ASSERT_FALSE(sends.empty());
  const calib::CalibrationReport report =
      calib::fit_trace(sends, calib::fixture_config());
  ASSERT_EQ(report.coll.size(), 1u);
  const calib::CollectiveFit& fit = report.coll.front();
  EXPECT_TRUE(fit.degenerate || !fit.fitted);
  EXPECT_FALSE(fit.note.empty());
  EXPECT_TRUE(all_params_finite(report));
}

TEST(CalibFit, ApplyFitWritesParametersBack) {
  const engine::JobConfig base = calib::fixture_config();
  const calib::CalibrationReport report =
      calib::fit_trace(emit_fixture_trace(), base);
  ASSERT_TRUE(report.ok);

  engine::JobConfig cfg = calib::fixture_config();
  const double nominal_hbm = cfg.cluster.gpu.hbm_bw;
  calib::apply_fit(report, cfg);
  EXPECT_NEAR(cfg.ops.gemm_efficiency, kTrueGemm, 0.01 * kTrueGemm);
  EXPECT_NEAR(cfg.ops.attention_efficiency, kTrueAttn, 0.01 * kTrueAttn);
  EXPECT_NEAR(cfg.ops.flash_attention2_efficiency, kTrueAttn,
              0.01 * kTrueAttn);
  EXPECT_NEAR(cfg.cluster.gpu.hbm_bw, kTrueMem * nominal_hbm,
              0.01 * kTrueMem * nominal_hbm);
  EXPECT_NEAR(cfg.network_efficiency, kTrueNet, 0.01 * kTrueNet);
  EXPECT_NEAR(static_cast<double>(cfg.cluster.net_latency),
              static_cast<double>(base.cluster.net_latency),
              0.01 * static_cast<double>(base.cluster.net_latency));

  // Degenerate groups must leave the config untouched.
  calib::CalibrationReport degenerate = report;
  degenerate.ops.degenerate = true;
  degenerate.coll.front().degenerate = true;
  engine::JobConfig untouched = calib::fixture_config();
  const double before = untouched.ops.gemm_efficiency;
  calib::apply_fit(degenerate, untouched);
  EXPECT_DOUBLE_EQ(untouched.ops.gemm_efficiency, before);
}

TEST(CalibFit, ReportRenderersCoverParametersAndResiduals) {
  const calib::CalibrationReport report =
      calib::fit_trace(emit_fixture_trace(), calib::fixture_config());
  ASSERT_TRUE(report.ok);

  const std::string table = calib::report_table(report);
  EXPECT_NE(table.find("gemm_efficiency"), std::string::npos);
  EXPECT_NE(table.find("alpha/inter"), std::string::npos);
  EXPECT_NE(table.find("Per-class residuals"), std::string::npos);
  EXPECT_NE(table.find("digest"), std::string::npos);

  // Every JSONL line must parse as standalone JSON with a record type.
  const std::string jsonl = calib::report_jsonl(report);
  std::istringstream lines(jsonl);
  std::string line;
  std::size_t params = 0, residuals = 0;
  while (std::getline(lines, line)) {
    if (line.empty()) continue;
    json::Value v;
    ASSERT_TRUE(json::parse(line, v)) << line;
    const std::string record = v.text("record");
    if (record == "calib_params") {
      ++params;
      EXPECT_NEAR(v.at("ops").num("gemm_efficiency"), kTrueGemm,
                  0.01 * kTrueGemm);
      EXPECT_EQ(v.text("digest"), std::to_string(report.digest));
    } else {
      EXPECT_EQ(record, "calib_residual");
      ++residuals;
    }
  }
  EXPECT_EQ(params, 1u);
  EXPECT_EQ(residuals, report.residuals.size());
}

// ------------------------------------------------------- replay validation

TEST(CalibReplay, FittedParametersReproduceTheTrace) {
  const auto spans = emit_fixture_trace();
  const engine::JobConfig base = calib::fixture_config();
  const calib::CalibrationReport report = calib::fit_trace(spans, base);
  ASSERT_TRUE(report.ok);

  const calib::ReplayResult replay =
      calib::replay_fit(spans, report, base, 0.02);
  ASSERT_TRUE(replay.ok) << replay.error;
  EXPECT_TRUE(replay.within_tolerance);
  EXPECT_LT(replay.rel_error, 0.02);
  EXPECT_DOUBLE_EQ(replay.tolerance, 0.02);
  EXPECT_GT(replay.trace_step, 0);
  EXPECT_GT(replay.sim_step, 0);
  EXPECT_NE(replay.digest, 0u);

  // The blame tiling must agree too, not just the total.
  ASSERT_FALSE(replay.shares.empty());
  EXPECT_LT(replay.max_share_delta, 0.05);
  for (const auto& share : replay.shares) {
    EXPECT_FALSE(share.cause.empty());
    EXPECT_TRUE(std::isfinite(share.delta()));
  }

  const std::string table = calib::replay_table(replay);
  EXPECT_NE(table.find("step"), std::string::npos);
  json::Value v;
  ASSERT_TRUE(json::parse(calib::replay_jsonl(replay), v));
  EXPECT_EQ(v.text("record"), "calib_replay");
}

TEST(CalibReplay, MisfitParametersAreOutOfTolerance) {
  // Force a wrong fit: halve the fitted GEMM efficiency. Replay must
  // detect that the simulator no longer reproduces the trace.
  const auto spans = emit_fixture_trace();
  const engine::JobConfig base = calib::fixture_config();
  calib::CalibrationReport report = calib::fit_trace(spans, base);
  ASSERT_TRUE(report.ok);
  report.ops.gemm_efficiency *= 0.5;
  const calib::ReplayResult replay =
      calib::replay_fit(spans, report, base, 0.02);
  ASSERT_TRUE(replay.ok) << replay.error;
  EXPECT_FALSE(replay.within_tolerance);
  EXPECT_GT(replay.rel_error, 0.02);
}

// --------------------------------------------------------- metrics export

TEST(CalibMetrics, FitAndReplayExportGauges) {
  const auto spans = emit_fixture_trace();
  const engine::JobConfig base = calib::fixture_config();
  const calib::CalibrationReport report = calib::fit_trace(spans, base);
  ASSERT_TRUE(report.ok);
  const calib::ReplayResult replay =
      calib::replay_fit(spans, report, base, 0.02);
  ASSERT_TRUE(replay.ok);

  telemetry::MetricsRegistry metrics;
  calib::export_metrics(report, metrics);
  calib::export_metrics(replay, metrics);
  const telemetry::MetricsSnapshot snap = metrics.snapshot();

  const auto* fit_ok = snap.find("calib_fit_ok");
  ASSERT_NE(fit_ok, nullptr);
  EXPECT_DOUBLE_EQ(fit_ok->value, 1.0);
  const auto* gemm = snap.find("calib_gemm_efficiency");
  ASSERT_NE(gemm, nullptr);
  EXPECT_NEAR(gemm->value, kTrueGemm, 0.01 * kTrueGemm);
  const auto* alpha =
      snap.find("calib_alpha_seconds", {{"domain", "inter"}});
  ASSERT_NE(alpha, nullptr);
  EXPECT_NEAR(alpha->value, to_seconds(base.cluster.net_latency),
              0.01 * to_seconds(base.cluster.net_latency));
  const auto* residual = snap.find("calib_residual", {{"class", "fwd"}});
  ASSERT_NE(residual, nullptr);
  EXPECT_GE(residual->value, 0.0);
  // Unfitted coverage classes export the -1 sentinel, not a fake zero.
  const auto* recv = snap.find("calib_residual", {{"class", "recv"}});
  ASSERT_NE(recv, nullptr);
  EXPECT_DOUBLE_EQ(recv->value, -1.0);

  const auto* replay_err = snap.find("calib_replay_error");
  ASSERT_NE(replay_err, nullptr);
  EXPECT_LT(replay_err->value, 0.02);
  const auto* within = snap.find("calib_replay_within_tolerance");
  ASSERT_NE(within, nullptr);
  EXPECT_DOUBLE_EQ(within->value, 1.0);
}

TEST(CalibMetrics, DashboardRendersCalibrationSection) {
  telemetry::MetricsRegistry metrics;
  telemetry::TrainingDashboard dashboard(&metrics);
  telemetry::CalibrationSummary summary;
  summary.fit_ok = true;
  summary.fit_rel_rms = 0.004;
  summary.replay_rel_error = 0.011;
  summary.replay_tolerance = 0.02;
  summary.replay_within_tolerance = true;
  summary.gemm_efficiency = kTrueGemm;
  summary.attention_efficiency = kTrueAttn;
  summary.memory_efficiency = kTrueMem;
  dashboard.record_calibration(summary);

  const std::string report = dashboard.report();
  EXPECT_NE(report.find("calibration fit"), std::string::npos);
  EXPECT_NE(report.find("calibration replay"), std::string::npos);

  const telemetry::MetricsSnapshot snap = metrics.snapshot();
  const auto* fit_ok = snap.find("dashboard_calib_fit_ok");
  ASSERT_NE(fit_ok, nullptr);
  EXPECT_DOUBLE_EQ(fit_ok->value, 1.0);
  const auto* err = snap.find("dashboard_calib_replay_error");
  ASSERT_NE(err, nullptr);
  EXPECT_DOUBLE_EQ(err->value, 0.011);
}

// ------------------------------------------------------------ CLI frontend

TEST(CalibrateCli, EmitThenCalibrateRoundTripsThroughFiles) {
  const std::string trace = temp_path("calib_cli_trace.jsonl");
  const std::string fitted = temp_path("calib_cli_fitted.jsonl");
  std::ostringstream out, err;
  ASSERT_EQ(calib::calibrate_main({"--emit", trace}, out, err), 0)
      << err.str();
  EXPECT_NE(out.str().find("wrote"), std::string::npos);

  std::ostringstream out2, err2;
  ASSERT_EQ(calib::calibrate_main({trace, "--fitted-out", fitted}, out2,
                                  err2),
            0)
      << err2.str();
  EXPECT_NE(out2.str().find("Fitted parameters"), std::string::npos);
  EXPECT_NE(out2.str().find("Replay validation"), std::string::npos);

  // The artifact written for CI holds both the fit and the replay records.
  std::string artifact;
  ASSERT_TRUE(diag::read_text_file(fitted, artifact));
  EXPECT_NE(artifact.find("\"record\":\"calib_params\""), std::string::npos);
  EXPECT_NE(artifact.find("\"record\":\"calib_replay\""), std::string::npos);

  // --json mode prints the same artifact to stdout.
  std::ostringstream out3, err3;
  ASSERT_EQ(calib::calibrate_main({trace, "--json", "--no-replay"}, out3,
                                  err3),
            0);
  EXPECT_NE(out3.str().find("\"record\":\"calib_params\""),
            std::string::npos);
  EXPECT_EQ(out3.str().find("\"record\":\"calib_replay\""),
            std::string::npos);
}

TEST(CalibrateCli, BadInvocationsExitNonZero) {
  std::ostringstream out, err;
  EXPECT_EQ(calib::calibrate_main({}, out, err), 1);
  EXPECT_NE(err.str().find("msdiag calibrate"), std::string::npos);
  EXPECT_EQ(calib::calibrate_main({"--bogus-flag"}, out, err), 1);
  EXPECT_EQ(calib::calibrate_main({"t.jsonl", "--preset", "nope"}, out, err),
            1);
  EXPECT_EQ(calib::calibrate_main({temp_path("missing_trace.jsonl")}, out,
                                  err),
            1);
}

TEST(CalibrateCli, OutOfToleranceReplayExitsOne) {
  // Calibrating a fixture trace against the demo preset forces a workload
  // mismatch the replay cannot hide (the demo step runs far more
  // microbatches than the trace holds): the CLI must exit 1 so CI catches
  // fidelity drift.
  const std::string trace = temp_path("calib_cli_mismatch_trace.jsonl");
  std::ostringstream out, err;
  ASSERT_EQ(calib::calibrate_main({"--emit", trace}, out, err), 0);
  std::ostringstream out2, err2;
  EXPECT_EQ(calib::calibrate_main({trace, "--preset", "demo"}, out2, err2),
            1);
  EXPECT_NE(err2.str().find("replay"), std::string::npos);
  // Skipping the replay skips the gate: the same mismatch exits 0.
  std::ostringstream out3, err3;
  EXPECT_EQ(calib::calibrate_main({trace, "--preset", "demo", "--no-replay"},
                                  out3, err3),
            0)
      << err3.str();
}

// ---------------------------------------------------------- golden fixtures

TEST(CalibGolden, SelfTraceAndKinetoReExportFitIdentically) {
  const std::string dir = std::string(MS_GOLDEN_DIR) + "/calib";
  calib::IngestResult self, kineto;
  std::string error;
  ASSERT_TRUE(
      calib::ingest_trace_file(dir + "/self_trace.jsonl", self, error))
      << error;
  ASSERT_TRUE(
      calib::ingest_trace_file(dir + "/kineto_trace.json", kineto, error))
      << error;
  ASSERT_FALSE(self.spans.empty());
  // The Kineto flavor carries quirk events on top of the same real spans.
  EXPECT_GT(kineto.spans.size(), self.spans.size());
  EXPECT_GT(kineto.skipped_events, 0u);

  const engine::JobConfig base = calib::fixture_config();
  const calib::CalibrationReport a = calib::fit_trace(self.spans, base);
  const calib::CalibrationReport b = calib::fit_trace(kineto.spans, base);
  ASSERT_TRUE(a.ok) << a.error;
  ASSERT_TRUE(b.ok) << b.error;

  // The committed fixtures were generated with the canonical parameters.
  EXPECT_NEAR(a.ops.gemm_efficiency, kTrueGemm, 0.01 * kTrueGemm);
  EXPECT_NEAR(a.ops.attention_efficiency, kTrueAttn, 0.01 * kTrueAttn);
  EXPECT_NEAR(a.ops.memory_efficiency, kTrueMem, 0.01 * kTrueMem);

  // Cosmetic trace differences (metadata, counters, wrapper spans) must
  // not perturb the determinism digest: both formats fit identically.
  EXPECT_EQ(a.spans_fitted, b.spans_fitted);
  EXPECT_EQ(a.digest, b.digest);
}

TEST(CalibGolden, CliCalibratesTheKinetoFixture) {
  const std::string path =
      std::string(MS_GOLDEN_DIR) + "/calib/kineto_trace.json";
  std::ostringstream out, err;
  EXPECT_EQ(calib::calibrate_main({path}, out, err), 0) << err.str();
  EXPECT_NE(out.str().find("events skipped"), std::string::npos);
  EXPECT_NE(out.str().find("Replay validation"), std::string::npos);
}

}  // namespace
