// Merge laws for the mergeable metric sketches (telemetry/sketch.h): the
// aggregation tree is only correct if counters/gauges/histograms merge
// commutatively and associatively, the wire-size model is deterministic,
// and a registry snapshot converts losslessly into mergeable form.
#include <gtest/gtest.h>

#include <string>

#include "core/stats.h"
#include "telemetry/metrics.h"
#include "telemetry/sketch.h"

namespace ms::telemetry {
namespace {

SketchSnapshot sample_snapshot(int salt) {
  SketchSnapshot s;
  s.add_counter("steps_total", 100.0 + salt);
  s.add_counter("faults_total{node=\"" + std::to_string(salt) + "\"}", 1.0);
  s.add_gauge("mfu", 0.5 + 0.01 * salt);
  HdrHistogram h;
  for (int i = 1; i <= 16; ++i) h.add(0.001 * i * (salt + 1));
  s.add_histogram("step_seconds", h);
  return s;
}

// ------------------------------------------------------------ gauge stat

TEST(GaugeStat, TracksSumMinMaxCount) {
  GaugeStat g;
  g.add(2.0);
  g.add(-1.0);
  g.add(5.0);
  EXPECT_DOUBLE_EQ(g.sum, 6.0);
  EXPECT_DOUBLE_EQ(g.min, -1.0);
  EXPECT_DOUBLE_EQ(g.max, 5.0);
  EXPECT_EQ(g.count, 3u);
  EXPECT_DOUBLE_EQ(g.mean(), 2.0);
}

TEST(GaugeStat, MergeMatchesCombinedAdds) {
  GaugeStat a, b, all;
  for (double v : {0.1, 0.9, 0.4}) { a.add(v); all.add(v); }
  for (double v : {0.3, 1.5}) { b.add(v); all.add(v); }
  a.merge(b);
  EXPECT_DOUBLE_EQ(a.sum, all.sum);
  EXPECT_DOUBLE_EQ(a.min, all.min);
  EXPECT_DOUBLE_EQ(a.max, all.max);
  EXPECT_EQ(a.count, all.count);
}

TEST(GaugeStat, EmptyMergeIsIdentity) {
  GaugeStat a;
  a.add(0.7);
  GaugeStat empty;
  a.merge(empty);
  EXPECT_EQ(a.count, 1u);
  EXPECT_DOUBLE_EQ(a.mean(), 0.7);
}

// ------------------------------------------------------------ merge laws

TEST(Sketch, MergeIsCommutative) {
  SketchSnapshot ab = sample_snapshot(1);
  ab.merge(sample_snapshot(2));
  SketchSnapshot ba = sample_snapshot(2);
  ba.merge(sample_snapshot(1));
  EXPECT_TRUE(approx_same(ab, ba));
  // Same series keys in both orders.
  EXPECT_EQ(ab.size(), ba.size());
}

TEST(Sketch, MergeIsAssociativeToRounding) {
  SketchSnapshot left = sample_snapshot(1);   // (A + B) + C
  left.merge(sample_snapshot(2));
  left.merge(sample_snapshot(3));
  SketchSnapshot bc = sample_snapshot(2);     // A + (B + C)
  bc.merge(sample_snapshot(3));
  SketchSnapshot right = sample_snapshot(1);
  right.merge(bc);
  EXPECT_TRUE(approx_same(left, right));
}

TEST(Sketch, CountersAdd) {
  SketchSnapshot a, b;
  a.add_counter("x", 3.0);
  b.add_counter("x", 4.0);
  a.merge(b);
  EXPECT_DOUBLE_EQ(a.series().at("x").counter, 7.0);
}

TEST(Sketch, DistinctLabelSetsStayDistinct) {
  SketchSnapshot a, b;
  a.add_counter("faults_total{node=\"0\"}", 1.0);
  b.add_counter("faults_total{node=\"1\"}", 2.0);
  a.merge(b);
  EXPECT_EQ(a.size(), 2u);
}

TEST(Sketch, HistogramBucketsAddElementWise) {
  HdrHistogram h1, h2;
  h1.add(0.010, 5);
  h2.add(0.010, 7);
  h2.add(1.000, 2);
  SketchSnapshot a, b;
  a.add_histogram("lat", h1);
  b.add_histogram("lat", h2);
  a.merge(b);
  const HdrHistogram& merged = a.series().at("lat").hist;
  EXPECT_EQ(merged.total(), 14u);
  EXPECT_NEAR(merged.quantile(0.5), 0.010, 0.010 * 0.08);
}

TEST(Sketch, ApproxSameDetectsDrift) {
  SketchSnapshot a = sample_snapshot(1);
  SketchSnapshot b = sample_snapshot(1);
  EXPECT_TRUE(approx_same(a, b));
  b.add_counter("steps_total", 1.0);
  EXPECT_FALSE(approx_same(a, b));
}

TEST(Sketch, DigestIsDeterministicAndOrderInsensitive) {
  SketchSnapshot a, b;
  a.add_counter("x", 1.0);
  a.add_counter("y", 2.0);
  b.add_counter("y", 2.0);
  b.add_counter("x", 1.0);
  EXPECT_EQ(a.digest(), b.digest());
  b.add_counter("x", 1.0);
  EXPECT_NE(a.digest(), b.digest());
}

// ------------------------------------------------------- wire-size model

TEST(Sketch, EncodedBytesDeterministicAndMonotone) {
  SketchSnapshot a = sample_snapshot(1);
  SketchSnapshot b = sample_snapshot(1);
  EXPECT_EQ(a.encoded_bytes(), b.encoded_bytes());
  const Bytes before = a.encoded_bytes();
  a.add_counter("one_more_series_total", 1.0);
  EXPECT_GT(a.encoded_bytes(), before);
  EXPECT_EQ(SketchSnapshot{}.encoded_bytes(), 16);  // frame header only
}

TEST(Sketch, HistogramEncodingIsSparse) {
  HdrHistogram dense, sparse;
  for (int i = 1; i <= 64; ++i) dense.add(0.001 * i);
  sparse.add(0.5, 64);  // same total, one bucket
  SketchSnapshot d, s;
  d.add_histogram("lat", dense);
  s.add_histogram("lat", sparse);
  EXPECT_GT(d.encoded_bytes(), s.encoded_bytes());
}

// ---------------------------------------------------- registry interop

TEST(Sketch, FromRegistrySnapshotRoundTrips) {
  MetricsRegistry reg;
  reg.counter("steps_total").add(42.0);
  reg.gauge("mfu").set(0.61);
  reg.gauge("mfu", {{"stage", "3"}}).set(0.55);
  reg.histogram("step_seconds").observe(12.5);
  reg.histogram("step_seconds").observe(13.5);

  SketchSnapshot s = SketchSnapshot::from(reg.snapshot());
  EXPECT_EQ(s.size(), 4u);
  EXPECT_DOUBLE_EQ(s.series().at("steps_total").counter, 42.0);
  const auto& g = s.series().at("mfu").gauge;
  EXPECT_EQ(g.count, 1u);
  EXPECT_DOUBLE_EQ(g.mean(), 0.61);
  EXPECT_EQ(s.series().at("step_seconds").hist.total(), 2u);
}

TEST(Sketch, TwoRanksSameSeriesMergeOntoOneEntry) {
  MetricsRegistry r0, r1;
  r0.counter("steps_total").add(10.0);
  r1.counter("steps_total").add(32.0);
  SketchSnapshot merged = SketchSnapshot::from(r0.snapshot());
  merged.merge(SketchSnapshot::from(r1.snapshot()));
  EXPECT_EQ(merged.size(), 1u);
  EXPECT_DOUBLE_EQ(merged.series().at("steps_total").counter, 42.0);
}

}  // namespace
}  // namespace ms::telemetry
