// Cross-validation: closed-form models vs the explicit simulators.
#include <gtest/gtest.h>

#include "collective/comm.h"
#include "collective/plan.h"
#include "engine/job.h"
#include "parallel/pipeline.h"
#include "net/flowsim.h"
#include "net/topology.h"
#include "plan/analytic.h"
#include "plan/space.h"

namespace ms {
namespace {

// Ring all-gather across pods: with one flow per uplink the fabric is
// contention-free, so the alpha-beta model should still match the max-min
// simulator even though every hop crosses the spine.
TEST(CrossVal, RingAcrossPodsMatchesAlphaBeta) {
  net::ClosParams np;
  np.hosts = 8;
  np.nics_per_host = 1;
  np.hosts_per_tor = 2;  // 4 ToRs
  np.pods = 2;
  np.aggs_per_pod = 2;
  np.spines_per_plane = 2;
  net::ClosTopology topo(np);

  const int n = 8;
  const Bytes total = static_cast<Bytes>(4e9);
  auto plan = collective::ring_all_gather_plan(n, total);

  TimeNs sim_total = 0;
  for (const auto& round : plan) {
    net::FlowSim sim(topo);
    for (const auto& step : round) {
      // Pick the first ECMP path deterministically; each host pair in the
      // ring uses distinct links, so there is no conflict to resolve.
      sim.add_flow(topo.ecmp_paths(step.src, step.dst, 0)[0], step.bytes);
    }
    sim.run();
    sim_total += sim.makespan();
  }

  collective::ClusterSpec c;
  c.nic_bw = np.nic_bw;
  c.net_latency = 0;
  collective::CollectiveModel model(c, 1.0);
  const TimeNs predicted =
      model.all_gather(total, n, collective::Domain::kInterNode);
  EXPECT_NEAR(to_seconds(sim_total), to_seconds(predicted),
              0.05 * to_seconds(predicted));
}

// Two rings forced through the same uplinks halve each other — the flow
// simulator should measure ~2x the single-ring time, which is exactly what
// a network_efficiency of 0.5 encodes in the cost model.
TEST(CrossVal, ContendingRingsMatchDeratedModel) {
  net::ClosParams np;
  np.hosts = 4;
  np.nics_per_host = 1;
  np.hosts_per_tor = 2;
  np.pods = 1;
  np.aggs_per_pod = 1;  // single agg: all cross-ToR traffic shares 2 links
  np.spines_per_plane = 1;
  np.split_downlink_ports = false;  // uplinks at NIC speed: guaranteed clash
  net::ClosTopology topo(np);

  // Two simultaneous transfers host0->host2 and host1->host3 (both cross
  // the single ToR-agg uplink pair).
  net::FlowSim sim(topo);
  const Bytes bytes = static_cast<Bytes>(5e9);
  sim.add_flow(topo.ecmp_paths(0, 2, 0)[0], bytes);
  sim.add_flow(topo.ecmp_paths(1, 3, 0)[0], bytes);
  sim.run();

  collective::ClusterSpec c;
  c.nic_bw = np.nic_bw;
  c.net_latency = 0;
  collective::CollectiveModel half(c, 0.5);
  const TimeNs predicted = half.send_recv(bytes, collective::Domain::kInterNode);
  EXPECT_NEAR(to_seconds(sim.makespan()), to_seconds(predicted),
              0.02 * to_seconds(predicted));
}

// Engine-level invariants that tie the breakdown together.
TEST(CrossVal, BreakdownComponentsFitInsideIteration) {
  engine::JobConfig cfg;
  cfg.model = model::config_175b();
  cfg.par = parallel::ParallelConfig{.tp = 8, .pp = 8, .dp = 4, .vpp = 6};
  cfg.global_batch = 256;
  cfg.ops = model::OperatorProfile::megatron_baseline();
  cfg.overlap = engine::OverlapOptions::megatron_lm();
  const auto r = engine::simulate_iteration(cfg);
  const auto& b = r.breakdown;
  EXPECT_GT(b.pipeline_body, 0);
  EXPECT_GE(b.dp_exposed, 0);
  EXPECT_GE(b.optimizer, 0);
  EXPECT_LE(b.data_pipeline + b.dp_exposed + b.pipeline_body + b.optimizer,
            r.iteration_time + milliseconds(1.0));
  // Compute busy time per stage can never exceed the iteration.
  for (TimeNs busy : r.stage_compute_busy) {
    EXPECT_LE(busy, r.iteration_time);
  }
}

TEST(CrossVal, InterleavingShrinksIterationAtSmallMicrobatchCounts) {
  engine::JobConfig cfg;
  cfg.model = model::config_175b();
  cfg.par = parallel::ParallelConfig{.tp = 8, .pp = 8, .dp = 4, .vpp = 1};
  cfg.global_batch = 64;  // m=16: big bubble, interleaving matters
  cfg.ops = model::OperatorProfile::megascale();
  cfg.overlap = engine::OverlapOptions::megascale();
  const auto v1 = engine::simulate_iteration(cfg);
  cfg.par.vpp = 6;
  const auto v6 = engine::simulate_iteration(cfg);
  EXPECT_LT(v6.iteration_time, v1.iteration_time);
  // The gain is in the bubble's ballpark: (p-1)/m * (1 - 1/v) of the body.
  const double predicted_gain =
      parallel::analytic_bubble_fraction(8, 1, 16) -
      parallel::analytic_bubble_fraction(8, 6, 16);
  const double measured_gain =
      1.0 - to_seconds(v6.iteration_time) / to_seconds(v1.iteration_time);
  EXPECT_NEAR(measured_gain, predicted_gain, 0.12);
}

// The planner's closed-form cost (plan/analytic.h) is the pruning stage in
// front of the DES engine, so it must *track* the simulator across the
// whole layout grid, not just at the optimum: a model that is accurate for
// pipeline-heavy layouts but wildly off for DP-heavy ones would silently
// prune the wrong half of the space. 15% is the band the admissibility
// property test tolerates; most layouts land within 2-3%.
TEST(CrossVal, PlanAnalyticCostTracksEngineAcrossLayoutGrid) {
  for (const bool megascale : {false, true}) {
    plan::PlanSpec spec;
    spec.model = model::config_175b();
    spec.gpus = 1536;
    spec.global_batch = 1536;
    spec.network_efficiency = 0.7;
    if (megascale) {
      spec.model.parallel_block = true;
      spec.model.attention = model::AttentionKind::kSlidingWindow;
      spec.model.window = 512;
    } else {
      spec.ops = model::OperatorProfile::megatron_baseline();
      spec.overlap = engine::OverlapOptions::megatron_lm();
    }
    int checked = 0;
    for (const auto& cand : plan::enumerate_space(spec)) {
      if (!plan::feasible(spec, cand)) continue;
      // tp 8 keeps the grid (and tier-1 wall time) focused on the layouts
      // Table 2 actually trades between; smaller-tp layouts are
      // cross-validated exhaustively in plan_property_test.
      if (cand.par.tp != 8) continue;
      const auto analytic = plan::analytic_cost(spec, cand);
      const auto sim = engine::simulate_iteration(plan::job_config(spec, cand));
      EXPECT_NEAR(to_seconds(analytic.step), to_seconds(sim.iteration_time),
                  0.15 * to_seconds(sim.iteration_time))
          << plan::candidate_name(cand)
          << (megascale ? " (megascale)" : " (baseline)");
      ++checked;
    }
    EXPECT_GE(checked, 8) << (megascale ? "megascale" : "baseline");
  }
}

}  // namespace
}  // namespace ms
