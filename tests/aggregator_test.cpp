// Hierarchical aggregation tree (telemetry/aggregator.h): the tree's
// flush must equal the flat-merge oracle (no series lost or double
// counted), level accounting must match the configured topology, and the
// traffic/latency numbers must behave like a real tree (bounded fan-in,
// sub-interval propagation, small overhead fraction).
#include <gtest/gtest.h>

#include <string>

#include "core/stats.h"
#include "telemetry/aggregator.h"
#include "telemetry/metrics.h"
#include "telemetry/sketch.h"

namespace ms::telemetry {
namespace {

AggTreeConfig small_tree() {
  AggTreeConfig cfg;
  cfg.ranks = 64;
  cfg.ranks_per_host = 8;
  cfg.hosts_per_pod = 4;
  return cfg;
}

SketchSnapshot rank_snapshot(int rank) {
  MetricsRegistry reg;
  reg.counter("steps_total").add(100.0);
  reg.counter("faults_total", {{"rank", std::to_string(rank)}}).add(1.0);
  reg.gauge("mfu").set(0.5 + 0.001 * rank);
  reg.histogram("step_seconds").observe(12.0 + 0.01 * rank);
  return SketchSnapshot::from(reg.snapshot());
}

TEST(Aggregator, TopologyMath) {
  AggregationTree tree(small_tree());
  EXPECT_EQ(tree.hosts(), 8);
  EXPECT_EQ(tree.pods(), 2);
}

TEST(Aggregator, FlushMatchesFlatMergeOracle) {
  AggregationTree tree(small_tree());
  for (int r = 0; r < 64; ++r) tree.submit(r, rank_snapshot(r));
  tree.flush();
  EXPECT_TRUE(approx_same(tree.root(), tree.flat_merge()));
  // 1 steps_total + 64 per-rank fault series + 1 mfu + 1 histogram.
  EXPECT_EQ(tree.root().size(), 67u);
  // The cluster view: every rank's counter summed, every gauge sampled.
  EXPECT_DOUBLE_EQ(tree.root().series().at("steps_total").counter, 6400.0);
  EXPECT_EQ(tree.root().series().at("mfu").gauge.count, 64u);
  EXPECT_EQ(tree.root().series().at("step_seconds").hist.total(), 64u);
}

TEST(Aggregator, LevelAccountingMatchesTopology) {
  AggregationTree tree(small_tree());
  for (int r = 0; r < 64; ++r) tree.submit(r, rank_snapshot(r));
  const FlushReport report = tree.flush();
  ASSERT_EQ(report.levels.size(), 3u);

  EXPECT_EQ(report.levels[0].level, "rank->host");
  EXPECT_EQ(report.levels[0].senders, 64);
  EXPECT_EQ(report.levels[0].receivers, 8);
  EXPECT_EQ(report.levels[0].fan_in, 8);

  EXPECT_EQ(report.levels[1].level, "host->pod");
  EXPECT_EQ(report.levels[1].senders, 8);
  EXPECT_EQ(report.levels[1].receivers, 2);
  EXPECT_EQ(report.levels[1].fan_in, 4);

  EXPECT_EQ(report.levels[2].level, "pod->cluster");
  EXPECT_EQ(report.levels[2].senders, 2);
  EXPECT_EQ(report.levels[2].receivers, 1);

  // rank->host bytes stay on-host; the upper two levels cross the fabric.
  EXPECT_EQ(report.intra_bytes, report.levels[0].bytes);
  EXPECT_EQ(report.network_bytes,
            report.levels[1].bytes + report.levels[2].bytes);
  EXPECT_GT(report.intra_bytes, 0);
  EXPECT_GT(report.network_bytes, 0);
  // Merged uplink sketches are far smaller than the raw per-rank sum.
  EXPECT_LT(report.network_bytes, report.intra_bytes);
}

TEST(Aggregator, PropagationFitsInsideFlushInterval) {
  AggTreeConfig cfg = small_tree();
  AggregationTree tree(cfg);
  for (int r = 0; r < cfg.ranks; ++r) tree.submit(r, rank_snapshot(r));
  const FlushReport report = tree.flush();
  EXPECT_GT(report.propagation_latency, 0);
  // Millisecond-granularity collection only works if a sample reaches the
  // root before the next flush.
  EXPECT_LT(report.propagation_latency, cfg.flush_interval);
  TimeNs stage_sum = 0;
  for (const auto& level : report.levels) stage_sum += level.stage_latency;
  EXPECT_EQ(report.propagation_latency, stage_sum);
}

TEST(Aggregator, OverheadFractionIsSmallAndPositive) {
  AggregationTree tree(small_tree());
  for (int r = 0; r < 64; ++r) tree.submit(r, rank_snapshot(r));
  const FlushReport report = tree.flush();
  EXPECT_GT(report.overhead_fraction, 0.0);
  EXPECT_LT(report.overhead_fraction, 0.01);  // the fig11 gate
  EXPECT_GT(report.per_host_uplink, 0.0);
}

TEST(Aggregator, NetworkBytesAccumulateAcrossFlushes) {
  AggregationTree tree(small_tree());
  for (int r = 0; r < 64; ++r) tree.submit(r, rank_snapshot(r));
  const Bytes first = tree.flush().network_bytes;
  EXPECT_EQ(tree.network_bytes_total(), first);
  for (int r = 0; r < 64; ++r) tree.submit(r, rank_snapshot(r));
  tree.flush();
  EXPECT_EQ(tree.network_bytes_total(), 2 * first);
}

TEST(Aggregator, ResubmitReplacesPendingSketch) {
  AggregationTree tree(small_tree());
  for (int r = 0; r < 64; ++r) tree.submit(r, rank_snapshot(r));
  // Rank 0 re-snapshots before the flush: latest wins, no double count.
  tree.submit(0, rank_snapshot(0));
  tree.flush();
  EXPECT_DOUBLE_EQ(tree.root().series().at("steps_total").counter, 6400.0);
}

TEST(Aggregator, SelfTelemetryCountsFlushes) {
  MetricsRegistry reg;
  AggTreeConfig cfg = small_tree();
  cfg.metrics = &reg;
  AggregationTree tree(cfg);
  for (int r = 0; r < cfg.ranks; ++r) tree.submit(r, rank_snapshot(r));
  tree.flush();
  tree.flush();
  EXPECT_DOUBLE_EQ(reg.counter("telemetry_agg_flushes_total").value(), 2.0);
  EXPECT_GT(reg.counter("telemetry_agg_bytes_total",
                        {{"level", "pod->cluster"}}).value(), 0.0);
}

TEST(Aggregator, RaggedLastHostAndPod) {
  AggTreeConfig cfg;
  cfg.ranks = 13;  // 2 hosts of 8 (one ragged), 1 pod
  cfg.ranks_per_host = 8;
  cfg.hosts_per_pod = 4;
  AggregationTree tree(cfg);
  EXPECT_EQ(tree.hosts(), 2);
  EXPECT_EQ(tree.pods(), 1);
  for (int r = 0; r < cfg.ranks; ++r) tree.submit(r, rank_snapshot(r));
  tree.flush();
  EXPECT_TRUE(approx_same(tree.root(), tree.flat_merge()));
  EXPECT_DOUBLE_EQ(tree.root().series().at("steps_total").counter, 1300.0);
}

}  // namespace
}  // namespace ms::telemetry
