#include <gtest/gtest.h>

#include <map>
#include <set>

#include "collective/bootstrap.h"
#include "collective/comm.h"
#include "collective/kvstore.h"
#include "collective/plan.h"
#include "net/flowsim.h"
#include "net/topology.h"

namespace ms::collective {
namespace {

// ------------------------------------------------------------ cost model

TEST(CollectiveModel, AllReduceAlphaBetaFormula) {
  ClusterSpec c;
  CollectiveModel m(c, 1.0);
  const Bytes s = 1_GiB;
  const int n = 8;
  const double expected_s =
      2.0 * (n - 1.0) / n * static_cast<double>(s) / c.nvlink_bw;
  const TimeNs expected =
      seconds(expected_s) + 2 * (n - 1) * c.nvlink_latency;
  EXPECT_EQ(m.all_reduce(s, n, Domain::kIntraNode), expected);
}

TEST(CollectiveModel, AllGatherHalfOfAllReduce) {
  ClusterSpec c;
  c.nvlink_latency = 0;  // isolate the bandwidth term
  CollectiveModel m(c, 1.0);
  const Bytes s = 1_GiB;
  EXPECT_NEAR(static_cast<double>(m.all_reduce(s, 16, Domain::kIntraNode)),
              2.0 * static_cast<double>(m.all_gather(s, 16, Domain::kIntraNode)),
              1e3);
}

TEST(CollectiveModel, SingleRankIsFree) {
  CollectiveModel m(ClusterSpec{});
  EXPECT_EQ(m.all_reduce(1_GiB, 1, Domain::kInterNode), 0);
  EXPECT_EQ(m.all_gather(1_GiB, 1, Domain::kIntraNode), 0);
  EXPECT_EQ(m.all_to_all(1_GiB, 1, Domain::kInterNode), 0);
}

TEST(CollectiveModel, ZeroBytesIsFree) {
  CollectiveModel m(ClusterSpec{});
  EXPECT_EQ(m.all_reduce(0, 64, Domain::kInterNode), 0);
  EXPECT_EQ(m.send_recv(0, Domain::kInterNode), 0);
}

TEST(CollectiveModel, NetworkEfficiencyScalesBandwidth) {
  ClusterSpec c;
  CollectiveModel full(c, 1.0), degraded(c, 0.5);
  const TimeNs t_full = full.all_reduce(1_GiB, 64, Domain::kInterNode);
  const TimeNs t_deg = degraded.all_reduce(1_GiB, 64, Domain::kInterNode);
  EXPECT_GT(t_deg, t_full);
  // Bandwidth term doubles; latency term unchanged.
  const TimeNs lat = 2 * 63 * c.net_latency;
  EXPECT_NEAR(static_cast<double>(t_deg - lat),
              2.0 * static_cast<double>(t_full - lat), 1e5);
}

TEST(CollectiveModel, IntraNodeFasterThanInterNode) {
  CollectiveModel m(ClusterSpec{});
  EXPECT_LT(m.all_reduce(1_GiB, 8, Domain::kIntraNode),
            m.all_reduce(1_GiB, 8, Domain::kInterNode));
}

TEST(CollectiveModel, BandwidthTermDominatesForLargeSizes) {
  // For large payloads, doubling size ~doubles time.
  CollectiveModel m(ClusterSpec{});
  const TimeNs t1 = m.all_reduce(1_GiB, 64, Domain::kInterNode);
  const TimeNs t2 = m.all_reduce(2_GiB, 64, Domain::kInterNode);
  EXPECT_NEAR(static_cast<double>(t2) / static_cast<double>(t1), 2.0, 0.05);
}

TEST(CollectiveModel, LatencyTermDominatesForTinySizes) {
  CollectiveModel m(ClusterSpec{});
  const TimeNs t = m.all_reduce(1_KiB, 64, Domain::kInterNode);
  EXPECT_GE(t, 2 * 63 * ClusterSpec{}.net_latency);
  EXPECT_LT(t, 2 * 63 * ClusterSpec{}.net_latency + milliseconds(1.0));
}

TEST(CollectiveModel, SendRecvLinear) {
  CollectiveModel m(ClusterSpec{});
  const TimeNs t1 = m.send_recv(100_MiB, Domain::kInterNode);
  const TimeNs t2 = m.send_recv(200_MiB, Domain::kInterNode);
  EXPECT_GT(t2, t1);
  EXPECT_NEAR(static_cast<double>(t2 - ClusterSpec{}.net_latency),
              2.0 * static_cast<double>(t1 - ClusterSpec{}.net_latency), 1e4);
}

// ------------------------------------------------------------------ plans

// Property: after executing the all-gather plan, every rank owns all chunks.
TEST(Plan, AllGatherDeliversAllChunksToAllRanks) {
  for (int n : {2, 3, 4, 8, 16}) {
    auto plan = ring_all_gather_plan(n, static_cast<Bytes>(n) * 1000);
    EXPECT_EQ(plan.size(), static_cast<std::size_t>(n - 1));
    std::vector<std::set<int>> owned(static_cast<std::size_t>(n));
    for (int i = 0; i < n; ++i) owned[static_cast<std::size_t>(i)].insert(i);
    for (const auto& round : plan) {
      // Senders must own what they send *before* this round.
      std::vector<std::pair<int, int>> deliveries;
      for (const auto& s : round) {
        ASSERT_TRUE(owned[static_cast<std::size_t>(s.src)].count(s.chunk))
            << "rank " << s.src << " sends chunk " << s.chunk
            << " it does not own (n=" << n << ")";
        deliveries.emplace_back(s.dst, s.chunk);
      }
      for (auto [dst, chunk] : deliveries) {
        owned[static_cast<std::size_t>(dst)].insert(chunk);
      }
    }
    for (int i = 0; i < n; ++i) {
      EXPECT_EQ(owned[static_cast<std::size_t>(i)].size(),
                static_cast<std::size_t>(n))
          << "rank " << i << " missing chunks (n=" << n << ")";
    }
  }
}

// Property: reduce-scatter accumulates exactly n contributions of chunk
// (i+1) mod n at rank i.
TEST(Plan, ReduceScatterAccumulatesAllContributions) {
  for (int n : {2, 4, 8}) {
    auto plan = ring_reduce_scatter_plan(n, static_cast<Bytes>(n) * 1000);
    // contributions[rank][chunk] = set of source ranks folded in.
    std::vector<std::map<int, std::set<int>>> contrib(
        static_cast<std::size_t>(n));
    for (int i = 0; i < n; ++i) {
      for (int c = 0; c < n; ++c) contrib[static_cast<std::size_t>(i)][c] = {i};
    }
    for (const auto& round : plan) {
      std::vector<std::tuple<int, int, std::set<int>>> transfers;
      for (const auto& s : round) {
        transfers.emplace_back(s.dst, s.chunk,
                               contrib[static_cast<std::size_t>(s.src)][s.chunk]);
      }
      for (auto& [dst, chunk, set] : transfers) {
        contrib[static_cast<std::size_t>(dst)][chunk].insert(set.begin(),
                                                             set.end());
      }
    }
    for (int i = 0; i < n; ++i) {
      const int expected_chunk = (i + 1) % n;
      EXPECT_EQ(contrib[static_cast<std::size_t>(i)][expected_chunk].size(),
                static_cast<std::size_t>(n))
          << "rank " << i << " chunk " << expected_chunk << " incomplete";
    }
  }
}

// Property: all-reduce plan = every rank ends owning the fully-reduced data.
TEST(Plan, AllReducePlanHasTwoPhases) {
  const int n = 8;
  auto plan = ring_all_reduce_plan(n, 8000);
  EXPECT_EQ(plan.size(), static_cast<std::size_t>(2 * (n - 1)));
}

TEST(Plan, AllToAllCoversAllPairs) {
  const int n = 6;
  auto plan = all_to_all_plan(n, 100);
  std::set<std::pair<int, int>> pairs;
  for (const auto& round : plan) {
    for (const auto& s : round) {
      EXPECT_NE(s.src, s.dst);
      pairs.emplace(s.src, s.dst);
    }
  }
  EXPECT_EQ(pairs.size(), static_cast<std::size_t>(n * (n - 1)));
}

TEST(Plan, BytesSentMatchesAlphaBetaNumerator) {
  const int n = 8;
  const Bytes total = 8000;
  auto plan = ring_all_gather_plan(n, total);
  // Ring all-gather: each rank sends (n-1)/n * total.
  EXPECT_EQ(bytes_sent_per_rank(plan, 0), total / n * (n - 1));
  EXPECT_EQ(bytes_sent_per_rank(plan, 3), total / n * (n - 1));
}

TEST(Plan, SingleRankPlansAreEmpty) {
  EXPECT_TRUE(ring_all_gather_plan(1, 1000).empty());
  EXPECT_TRUE(ring_all_reduce_plan(1, 1000).empty());
  EXPECT_TRUE(all_to_all_plan(1, 1000).empty());
}

// --------------------------------- cost model vs flow simulator (fidelity)

// Execute a ring all-gather's rounds on the max-min-fair flow simulator
// over hosts packed under one ToR and compare with the alpha-beta formula
// (zero-latency, since the fluid simulator has no per-hop latency).
TEST(Plan, RingAllGatherMatchesFlowSimUnderOneTor) {
  net::ClosParams np;
  np.hosts = 8;
  np.nics_per_host = 1;
  np.hosts_per_tor = 8;
  np.pods = 1;
  np.aggs_per_pod = 1;
  np.spines_per_plane = 1;
  net::ClosTopology topo(np);

  const int n = 8;
  const Bytes total = static_cast<Bytes>(8e9);  // 1 GB chunks
  auto plan = ring_all_gather_plan(n, total);

  TimeNs sim_total = 0;
  for (const auto& round : plan) {
    net::FlowSim sim(topo);
    for (const auto& s : round) {
      sim.add_flow(topo.ecmp_paths(s.src, s.dst, 0)[0], s.bytes);
    }
    sim.run();
    sim_total += sim.makespan();
  }

  ClusterSpec c;
  c.nic_bw = np.nic_bw;
  c.net_latency = 0;
  CollectiveModel model(c, 1.0);
  const TimeNs predicted = model.all_gather(total, n, Domain::kInterNode);
  EXPECT_NEAR(to_seconds(sim_total), to_seconds(predicted), 0.01);
}

// -------------------------------------------------------------- kv stores

TEST(KvStore, BlockingSetGetRoundTrip) {
  BlockingKvStore store(std::chrono::microseconds(0));
  store.set("k", "v");
  EXPECT_EQ(store.get("k"), std::optional<std::string>("v"));
  EXPECT_EQ(store.get("missing"), std::nullopt);
}

TEST(KvStore, AsyncSetGetRoundTrip) {
  AsyncKvStore store;
  store.set("k", "v");
  EXPECT_EQ(store.get("k"), std::optional<std::string>("v"));
  EXPECT_EQ(store.get("missing"), std::nullopt);
}

TEST(KvStore, AddIsAtomicCounter) {
  AsyncKvStore store;
  EXPECT_EQ(store.add("c", 1), 1);
  EXPECT_EQ(store.add("c", 2), 3);
  EXPECT_EQ(store.add("c", -3), 0);
}

TEST(KvStore, ConcurrentAddsAllCounted) {
  AsyncKvStore store;
  constexpr int kThreads = 8, kIncrements = 500;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < kIncrements; ++i) store.add("c", 1);
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(store.get("c"), std::to_string(kThreads * kIncrements));
}

TEST(KvStore, WaitBlocksUntilSet) {
  AsyncKvStore store;
  std::thread setter([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    store.set("late", "value");
  });
  auto v = store.wait("late", std::chrono::milliseconds(2000));
  setter.join();
  EXPECT_EQ(v, std::optional<std::string>("value"));
}

TEST(KvStore, WaitTimesOut) {
  AsyncKvStore store;
  EXPECT_EQ(store.wait("never", std::chrono::milliseconds(30)), std::nullopt);
}

TEST(KvStore, BlockingWaitTimesOut) {
  BlockingKvStore store(std::chrono::microseconds(0));
  EXPECT_EQ(store.wait("never", std::chrono::milliseconds(30)), std::nullopt);
}

TEST(KvStore, BarrierReleasesAllParticipants) {
  AsyncKvStore store;
  constexpr int kWorld = 8;
  std::atomic<int> released{0};
  std::vector<std::thread> threads;
  for (int r = 0; r < kWorld; ++r) {
    threads.emplace_back([&] {
      ASSERT_TRUE(store_barrier(store, "b", kWorld));
      released.fetch_add(1);
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(released.load(), kWorld);
}

TEST(KvStore, BarrierTimesOutWhenParticipantMissing) {
  AsyncKvStore store;
  // Only 1 of 2 arrives.
  EXPECT_FALSE(store_barrier(store, "b", 2, std::chrono::milliseconds(50)));
}

TEST(KvStore, GroupInitCompletesBothModes) {
  AsyncKvStore store1;
  auto ordered = run_group_init(store1, 16, 4, /*global_barrier=*/false);
  EXPECT_TRUE(ordered.ok);
  AsyncKvStore store2;
  auto global = run_group_init(store2, 16, 4, /*global_barrier=*/true);
  EXPECT_TRUE(global.ok);
}

// The §3.5 headline, demonstrated with real threads: blocking store +
// global barriers is dramatically slower than async store + ordered init.
TEST(KvStore, OrderedAsyncInitMuchFasterThanBlockingGlobal) {
  constexpr int kWorld = 32, kGroupSize = 4;
  BlockingKvStore blocking(std::chrono::microseconds(50));
  auto slow = run_group_init(blocking, kWorld, kGroupSize,
                             /*global_barrier=*/true);
  ASSERT_TRUE(slow.ok);

  AsyncKvStore async_store;
  auto fast = run_group_init(async_store, kWorld, kGroupSize,
                             /*global_barrier=*/false);
  ASSERT_TRUE(fast.ok);

  EXPECT_LT(fast.wall_time.count() * 3, slow.wall_time.count())
      << "fast=" << fast.wall_time.count()
      << "us slow=" << slow.wall_time.count() << "us";
}

// ------------------------------------------------------------- bootstrap

TEST(Bootstrap, ReproducesPaperMilestones) {
  BootstrapConfig cfg;
  cfg.world_size = 2048;

  cfg.store = StoreKind::kTcpStore;
  cfg.ordered_init = false;
  const double t_naive = to_seconds(estimate_init_time(cfg).init_time);
  EXPECT_NEAR(t_naive, 1047.0, 60.0);

  cfg.store = StoreKind::kRedis;
  const double t_redis = to_seconds(estimate_init_time(cfg).init_time);
  EXPECT_NEAR(t_redis, 361.0, 25.0);

  cfg.ordered_init = true;
  const double t_ordered = to_seconds(estimate_init_time(cfg).init_time);
  EXPECT_LT(t_ordered, 5.0);
}

TEST(Bootstrap, TenThousandGpusUnderThirtySeconds) {
  BootstrapConfig cfg;
  cfg.world_size = 12288;
  cfg.store = StoreKind::kRedis;
  cfg.ordered_init = true;
  EXPECT_LT(to_seconds(estimate_init_time(cfg).init_time), 30.0);
}

TEST(Bootstrap, NaiveScalesQuadratically) {
  BootstrapConfig cfg;
  cfg.store = StoreKind::kTcpStore;
  cfg.ordered_init = false;
  cfg.world_size = 2048;
  const double t1 = to_seconds(estimate_init_time(cfg).init_time);
  cfg.world_size = 4096;
  const double t2 = to_seconds(estimate_init_time(cfg).init_time);
  EXPECT_NEAR(t2 / t1, 4.0, 0.5);
}

TEST(Bootstrap, OrderedScalesLinearly) {
  BootstrapConfig cfg;
  cfg.store = StoreKind::kRedis;
  cfg.ordered_init = true;
  cfg.world_size = 2048;
  const double t1 = to_seconds(estimate_init_time(cfg).init_time);
  cfg.world_size = 4096;
  const double t2 = to_seconds(estimate_init_time(cfg).init_time);
  EXPECT_NEAR(t2 / t1, 2.0, 0.2);
}

TEST(Bootstrap, OpCountsMatchStructure) {
  BootstrapConfig cfg;
  cfg.world_size = 512;
  cfg.tp = 8;
  cfg.pp = 8;
  auto est = estimate_init_time(cfg);
  // groups = 512/8 + 512/8 + 64 = 192.
  EXPECT_DOUBLE_EQ(est.group_count, 192.0);
  // join ops = 2 * 3n = 3072; naive adds groups*n.
  EXPECT_DOUBLE_EQ(est.total_store_ops, 192.0 * 512 + 3072);
}

}  // namespace
}  // namespace ms::collective
