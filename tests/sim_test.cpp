#include <gtest/gtest.h>

#include <vector>

#include "sim/engine.h"
#include "sim/graph.h"

namespace ms::sim {
namespace {

// ---------------------------------------------------------------- engine

TEST(Engine, RunsEventsInTimeOrder) {
  Engine e;
  std::vector<int> order;
  e.at(seconds(3.0), [&] { order.push_back(3); });
  e.at(seconds(1.0), [&] { order.push_back(1); });
  e.at(seconds(2.0), [&] { order.push_back(2); });
  e.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(e.now(), seconds(3.0));
  EXPECT_EQ(e.executed(), 3u);
}

TEST(Engine, FifoWithinTimestamp) {
  Engine e;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    e.at(seconds(1.0), [&order, i] { order.push_back(i); });
  }
  e.run();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
}

TEST(Engine, AfterIsRelative) {
  Engine e;
  TimeNs fired = -1;
  e.at(seconds(5.0), [&] {
    e.after(seconds(2.0), [&] { fired = e.now(); });
  });
  e.run();
  EXPECT_EQ(fired, seconds(7.0));
}

TEST(Engine, NegativeDelayClampedToNow) {
  Engine e;
  TimeNs fired = -1;
  e.at(seconds(1.0), [&] {
    e.after(-seconds(5.0), [&] { fired = e.now(); });
  });
  e.run();
  EXPECT_EQ(fired, seconds(1.0));
}

TEST(Engine, CancelPreventsExecution) {
  Engine e;
  bool ran = false;
  EventId id = e.at(seconds(1.0), [&] { ran = true; });
  EXPECT_TRUE(e.cancel(id));
  EXPECT_FALSE(e.cancel(id));  // double-cancel fails
  e.run();
  EXPECT_FALSE(ran);
  EXPECT_EQ(e.executed(), 0u);
}

TEST(Engine, CancelFromInsideEvent) {
  Engine e;
  bool second_ran = false;
  EventId second = e.at(seconds(2.0), [&] { second_ran = true; });
  e.at(seconds(1.0), [&] { EXPECT_TRUE(e.cancel(second)); });
  e.run();
  EXPECT_FALSE(second_ran);
}

TEST(Engine, StopInterruptsRun) {
  Engine e;
  int ran = 0;
  e.at(seconds(1.0), [&] {
    ++ran;
    e.stop();
  });
  e.at(seconds(2.0), [&] { ++ran; });
  e.run();
  EXPECT_EQ(ran, 1);
  EXPECT_EQ(e.pending(), 1u);
  e.run();  // resumes
  EXPECT_EQ(ran, 2);
}

TEST(Engine, RunUntilAdvancesClockToBound) {
  Engine e;
  int ran = 0;
  e.at(seconds(1.0), [&] { ++ran; });
  e.at(seconds(5.0), [&] { ++ran; });
  e.run_until(seconds(3.0));
  EXPECT_EQ(ran, 1);
  EXPECT_EQ(e.now(), seconds(3.0));
  e.run();
  EXPECT_EQ(ran, 2);
  EXPECT_EQ(e.now(), seconds(5.0));
}

TEST(Engine, RunUntilInclusiveOfBoundaryEvent) {
  Engine e;
  int ran = 0;
  e.at(seconds(3.0), [&] { ++ran; });
  e.run_until(seconds(3.0));
  EXPECT_EQ(ran, 1);
}

TEST(Engine, EventsScheduledDuringRunExecute) {
  Engine e;
  int depth = 0;
  std::function<void()> recurse = [&] {
    if (++depth < 100) e.after(milliseconds(1.0), recurse);
  };
  e.at(0, recurse);
  e.run();
  EXPECT_EQ(depth, 100);
  EXPECT_EQ(e.now(), milliseconds(99.0));
}

TEST(Engine, PendingCountsLiveEventsOnly) {
  Engine e;
  EventId a = e.at(seconds(1.0), [] {});
  e.at(seconds(2.0), [] {});
  EXPECT_EQ(e.pending(), 2u);
  e.cancel(a);
  EXPECT_EQ(e.pending(), 1u);
}

// ------------------------------------------- tombstone accounting edges

TEST(Engine, CancelOfAlreadyFiredIdFails) {
  Engine e;
  EventId id = e.at(seconds(1.0), [] {});
  e.run();
  EXPECT_FALSE(e.cancel(id));
  EXPECT_EQ(e.executed(), 1u);
  EXPECT_EQ(e.cancelled(), 0u);  // a fired event is not a tombstone
  EXPECT_EQ(e.pending(), 0u);
}

TEST(Engine, CancelOwnEventFromItsCallbackFails) {
  Engine e;
  bool cancel_result = true;
  EventId id = e.at(seconds(1.0), [&] { cancel_result = e.cancel(id); });
  e.run();
  // By the time the callback runs the id has fired; it is not cancellable.
  EXPECT_FALSE(cancel_result);
  EXPECT_EQ(e.executed(), 1u);
  EXPECT_EQ(e.cancelled(), 0u);
}

TEST(Engine, PendingAfterMassCancel) {
  Engine e;
  std::vector<EventId> ids;
  for (int i = 0; i < 100; ++i) {
    ids.push_back(e.at(seconds(1.0 + i), [] {}));
  }
  for (EventId id : ids) EXPECT_TRUE(e.cancel(id));
  EXPECT_EQ(e.pending(), 0u);
  EXPECT_EQ(e.cancelled(), 100u);
  // The queue is pure tombstones now: run() must drain them without
  // executing anything or moving the clock.
  e.run();
  EXPECT_EQ(e.executed(), 0u);
  EXPECT_EQ(e.now(), 0);
}

TEST(Engine, StopDuringRunUntilFreezesClockAtLastEvent) {
  Engine e;
  int ran = 0;
  e.at(seconds(1.0), [&] {
    ++ran;
    e.stop();
  });
  e.at(seconds(2.0), [&] { ++ran; });
  e.run_until(seconds(5.0));
  // Interrupted: the clock stays at the stop point, not the bound, so the
  // untouched remainder of the window is not silently skipped.
  EXPECT_EQ(ran, 1);
  EXPECT_EQ(e.now(), seconds(1.0));
  EXPECT_EQ(e.pending(), 1u);
  e.run_until(seconds(5.0));  // resume the same window
  EXPECT_EQ(ran, 2);
  EXPECT_EQ(e.now(), seconds(5.0));
}

TEST(Engine, RunUntilPastStopStillDrainsWhenResumed) {
  Engine e;
  e.at(seconds(1.0), [&] { e.stop(); });
  e.run_until(seconds(0.5));  // stops at the bound before the event
  EXPECT_EQ(e.now(), seconds(0.5));
  EXPECT_EQ(e.executed(), 0u);
  e.run_until(seconds(1.0));  // event at the inclusive boundary fires
  EXPECT_EQ(e.executed(), 1u);
  EXPECT_EQ(e.now(), seconds(1.0));
}

TEST(Engine, CancelledEventsExcludedFromDigestAndExecuted) {
  Engine e1, e2;
  e1.at(seconds(1.0), [] {});
  EventId doomed = e1.at(seconds(1.0), [] {});
  e1.cancel(doomed);
  e1.run();

  e2.at(seconds(1.0), [] {});
  e2.run();
  EXPECT_EQ(e1.executed(), e2.executed());
  // Only executed events fold into the digest: both engines executed just
  // event id 1 at t=1s, so the digests match despite the cancelled slot.
  EXPECT_EQ(e1.digest(), e2.digest());
}

TEST(Engine, QueueIntrospectionGetters) {
  Engine e;
  EXPECT_EQ(e.queue_size(), 0u);
  EXPECT_EQ(e.peak_queue_size(), 0u);
  EXPECT_EQ(e.scheduled(), 0u);
  const EventId a = e.at(seconds(1.0), [] {});
  e.at(seconds(2.0), [] {});
  e.at(seconds(3.0), [] {});
  EXPECT_EQ(e.queue_size(), 3u);
  EXPECT_EQ(e.peak_queue_size(), 3u);
  EXPECT_EQ(e.scheduled(), 3u);
  EXPECT_EQ(e.tombstone_count(), 0u);

  // A cancelled event stays in the heap as a tombstone until popped.
  e.cancel(a);
  EXPECT_EQ(e.queue_size(), 3u);
  EXPECT_EQ(e.tombstone_count(), 1u);
  EXPECT_EQ(e.tombstone_pops(), 0u);

  e.run();
  EXPECT_EQ(e.queue_size(), 0u);
  EXPECT_EQ(e.tombstone_count(), 0u);
  EXPECT_EQ(e.tombstone_pops(), 1u);  // the skip was counted
  EXPECT_EQ(e.peak_queue_size(), 3u);  // high-water mark survives the drain
  EXPECT_EQ(e.executed(), 2u);
}

TEST(Engine, PeakQueueTracksMidRunScheduling) {
  Engine e;
  e.at(seconds(1.0), [&e] {
    for (int i = 0; i < 5; ++i) e.after(seconds(1.0), [] {});
  });
  EXPECT_EQ(e.peak_queue_size(), 1u);
  e.run();
  // The callback pushed 5 events while the queue held none: peak is 5.
  EXPECT_EQ(e.peak_queue_size(), 5u);
  EXPECT_EQ(e.executed(), 6u);
}

// ---------------------------------------------------------------- graph

TEST(Graph, SerialChainOnOneStream) {
  Engine e;
  GraphExecutor g(1);
  OpId a = g.add_op({.name = "a", .stream = 0, .duration = seconds(1.0)});
  OpId b = g.add_op({.name = "b", .stream = 0, .duration = seconds(2.0)});
  g.add_dep(a, b);
  const TimeNs makespan = g.run(e);
  EXPECT_EQ(makespan, seconds(3.0));
  EXPECT_EQ(g.record(a).start, 0);
  EXPECT_EQ(g.record(a).end, seconds(1.0));
  EXPECT_EQ(g.record(b).start, seconds(1.0));
  EXPECT_EQ(g.record(b).end, seconds(3.0));
}

TEST(Graph, IndependentOpsOnDistinctStreamsOverlap) {
  Engine e;
  GraphExecutor g(2);
  g.add_op({.name = "a", .stream = 0, .duration = seconds(2.0)});
  g.add_op({.name = "b", .stream = 1, .duration = seconds(2.0)});
  EXPECT_EQ(g.run(e), seconds(2.0));
}

TEST(Graph, StreamSerializesIndependentOps) {
  Engine e;
  GraphExecutor g(1);
  g.add_op({.name = "a", .stream = 0, .duration = seconds(2.0)});
  g.add_op({.name = "b", .stream = 0, .duration = seconds(2.0)});
  EXPECT_EQ(g.run(e), seconds(4.0));
}

TEST(Graph, DiamondDependency) {
  Engine e;
  GraphExecutor g(4);
  OpId src = g.add_op({.name = "src", .stream = 0, .duration = seconds(1.0)});
  OpId l = g.add_op({.name = "l", .stream = 1, .duration = seconds(2.0)});
  OpId r = g.add_op({.name = "r", .stream = 2, .duration = seconds(3.0)});
  OpId sink = g.add_op({.name = "sink", .stream = 3, .duration = seconds(1.0)});
  g.add_dep(src, l);
  g.add_dep(src, r);
  g.add_dep(l, sink);
  g.add_dep(r, sink);
  EXPECT_EQ(g.run(e), seconds(5.0));  // 1 + max(2,3) + 1
  EXPECT_EQ(g.record(sink).start, seconds(4.0));
}

TEST(Graph, PriorityBreaksReadyTies) {
  Engine e;
  GraphExecutor g(1);
  // Both ready at t=0 on the same stream; high priority goes first even
  // though it was added later.
  OpId low = g.add_op(
      {.name = "low", .stream = 0, .duration = seconds(1.0), .priority = 0});
  OpId high = g.add_op(
      {.name = "high", .stream = 0, .duration = seconds(1.0), .priority = 5});
  g.run(e);
  EXPECT_LT(g.record(high).start, g.record(low).start);
}

TEST(Graph, FifoWithinSamePriority) {
  Engine e;
  GraphExecutor g(1);
  OpId first = g.add_op({.name = "f", .stream = 0, .duration = seconds(1.0)});
  OpId second = g.add_op({.name = "s", .stream = 0, .duration = seconds(1.0)});
  g.run(e);
  EXPECT_LT(g.record(first).start, g.record(second).start);
}

TEST(Graph, DurationFnOverridesStatic) {
  Engine e;
  GraphExecutor g(1);
  OpId a = g.add_op({.name = "a",
                     .stream = 0,
                     .duration = seconds(100.0),
                     .duration_fn = [](TimeNs) { return seconds(1.0); }});
  g.run(e);
  EXPECT_EQ(g.record(a).end, seconds(1.0));
}

TEST(Graph, OnFinishHookSeesSpan) {
  Engine e;
  GraphExecutor g(1);
  TimeNs seen_start = -1, seen_end = -1;
  g.add_op({.name = "a",
            .stream = 0,
            .duration = seconds(2.0),
            .on_finish =
                [&](TimeNs s, TimeNs f) {
                  seen_start = s;
                  seen_end = f;
                }});
  g.run(e);
  EXPECT_EQ(seen_start, 0);
  EXPECT_EQ(seen_end, seconds(2.0));
}

TEST(Graph, StreamBusyAccounting) {
  Engine e;
  GraphExecutor g(2);
  OpId a = g.add_op({.name = "a", .stream = 0, .duration = seconds(1.0)});
  OpId b = g.add_op({.name = "b", .stream = 0, .duration = seconds(2.0)});
  g.add_op({.name = "c", .stream = 1, .duration = seconds(5.0)});
  g.add_dep(a, b);
  g.run(e);
  EXPECT_EQ(g.stream_busy(0), seconds(3.0));
  EXPECT_EQ(g.stream_busy(1), seconds(5.0));
}

TEST(Graph, CycleDetectedAsDeadlock) {
  Engine e;
  GraphExecutor g(2);
  OpId a = g.add_op({.name = "a", .stream = 0, .duration = seconds(1.0)});
  OpId b = g.add_op({.name = "b", .stream = 1, .duration = seconds(1.0)});
  g.add_dep(a, b);
  g.add_dep(b, a);
  EXPECT_THROW(g.run(e), std::logic_error);
}

TEST(Graph, EmptyGraphRunsInstantly) {
  Engine e;
  GraphExecutor g(1);
  EXPECT_EQ(g.run(e), 0);
}

TEST(Graph, AddStreamExtendsCapacity) {
  GraphExecutor g(1);
  const StreamId s = g.add_stream();
  EXPECT_EQ(s, 1);
  EXPECT_EQ(g.stream_count(), 2u);
}

TEST(Graph, RunTwiceThrows) {
  Engine e;
  GraphExecutor g(1);
  g.add_op({.name = "a", .stream = 0, .duration = 1});
  g.run(e);
  EXPECT_THROW(g.run(e), std::logic_error);
}

// A 1F1B-like pattern: verify the executor models pipelined overlap the way
// the training engine will rely on.
TEST(Graph, TwoStagePipelineOverlap) {
  Engine e;
  GraphExecutor g(2);
  constexpr int kMicro = 4;
  const TimeNs f = seconds(1.0);
  std::vector<OpId> s0(kMicro), s1(kMicro);
  for (int m = 0; m < kMicro; ++m) {
    s0[static_cast<std::size_t>(m)] =
        g.add_op({.name = "s0", .stream = 0, .duration = f});
    s1[static_cast<std::size_t>(m)] =
        g.add_op({.name = "s1", .stream = 1, .duration = f});
    g.add_dep(s0[static_cast<std::size_t>(m)], s1[static_cast<std::size_t>(m)]);
  }
  // Pipeline: stage1 of microbatch m depends on stage0 of m; stage ops
  // serialize on their stream. Makespan = (kMicro + 1) * f.
  EXPECT_EQ(g.run(e), (kMicro + 1) * f);
}

}  // namespace
}  // namespace ms::sim
