// The §3.1 receptive-field experiment on real training: full attention and
// sufficiently-windowed stacks can copy across the sequence; a window too
// small for the layer stack to bridge genuinely cannot.
#include <gtest/gtest.h>

#include <cmath>

#include "optim/trainer.h"

namespace ms::optim {
namespace {

constexpr int kVocab = 16;
constexpr int kHalf = 6;  // copy distance

TinyGptConfig copy_model(int window, int layers) {
  TinyGptConfig cfg;
  cfg.vocab = kVocab;
  cfg.seq_len = 2 * kHalf;
  cfg.hidden = 32;
  cfg.heads = 4;
  cfg.layers = layers;
  cfg.ffn_hidden = 64;
  cfg.window = window;
  return cfg;
}

double trained_copy_loss(int window, int layers, int steps = 200) {
  Rng init(42);
  TinyGpt model(copy_model(window, layers), init);
  Adam opt(model.parameters());
  CopyCorpus corpus(kVocab, kHalf);
  Rng data(43);
  train_copy_task(model, opt, corpus, steps, 4, 3e-3f, data);
  Rng eval(44);
  return corpus.copy_loss(model, 16, eval);
}

TEST(CopyTask, SequencesRepeatExactly) {
  CopyCorpus corpus(kVocab, kHalf);
  Rng rng(1);
  for (int i = 0; i < 10; ++i) {
    auto seq = corpus.sample_sequence(rng);
    ASSERT_EQ(seq.size(), static_cast<std::size_t>(2 * kHalf));
    for (int t = 0; t < kHalf; ++t) {
      EXPECT_EQ(seq[static_cast<std::size_t>(t)],
                seq[static_cast<std::size_t>(kHalf + t)]);
    }
  }
}

TEST(CopyTask, UntrainedCopyLossNearUniform) {
  Rng init(2);
  TinyGpt model(copy_model(0, 2), init);
  CopyCorpus corpus(kVocab, kHalf);
  Rng eval(3);
  EXPECT_NEAR(corpus.copy_loss(model, 8, eval), std::log(kVocab), 0.8);
}

TEST(CopyTask, FullAttentionLearnsToCopy) {
  const double loss = trained_copy_loss(/*window=*/0, /*layers=*/2);
  EXPECT_LT(loss, 0.8 * std::log(kVocab));  // clearly below chance
}

TEST(CopyTask, TooSmallWindowCannotCopy) {
  // Window 2 x 2 layers reaches ~4 back; the copy distance is 6. No amount
  // of training lets information flow that far.
  const double blind = trained_copy_loss(/*window=*/2, /*layers=*/2);
  const double sighted = trained_copy_loss(/*window=*/0, /*layers=*/2);
  EXPECT_GT(blind, sighted + 0.3);
  EXPECT_GT(blind, 0.8 * std::log(kVocab));  // stuck near chance
}

TEST(CopyTask, StackedWindowsExtendReceptiveField) {
  // The §3.1 claim: window 4 cannot bridge distance 6 in ONE layer, but a
  // 2-layer stack (reach ~8) can.
  const double shallow = trained_copy_loss(/*window=*/4, /*layers=*/1);
  const double stacked = trained_copy_loss(/*window=*/4, /*layers=*/2);
  EXPECT_LT(stacked, shallow - 0.3);
}

}  // namespace
}  // namespace ms::optim
