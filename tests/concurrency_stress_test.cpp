// Multi-threaded stress tests for the annotated concurrent subsystems:
// the §3.5 rendezvous stores and the §5 metrics registry. Deliberately
// tier-1 (fast, seconds) so every push runs them, and in the TSan CI leg
// so data races surface as hard failures, not flakes. The assertions are
// exact-count invariants: under races they fail loudly; under TSan any
// unsynchronized access is reported even when the counts survive.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <string>
#include <thread>
#include <vector>

#include "collective/kvstore.h"
#include "telemetry/metrics.h"

namespace {

using ms::collective::AsyncKvStore;
using ms::collective::BlockingKvStore;
using ms::collective::KvStore;
using ms::telemetry::MetricsRegistry;

constexpr int kThreads = 8;
constexpr int kOpsPerThread = 200;

void hammer_store(KvStore& store) {
  // Phase 1: every thread publishes its own keys while concurrently
  // polling for a sibling's (wait + set racing on the same shard).
  std::vector<std::thread> pool;
  std::atomic<int> found{0};
  for (int t = 0; t < kThreads; ++t) {
    pool.emplace_back([&store, &found, t] {
      for (int i = 0; i < kOpsPerThread; ++i) {
        const std::string key =
            "k" + std::to_string(t) + "." + std::to_string(i);
        store.set(key, std::to_string(i));
        store.add("total", 1);
      }
      // Wait on a key a *different* thread publishes (last of the ring
      // neighbour); exercises the blocking wait path under contention.
      const std::string peer = "k" + std::to_string((t + 1) % kThreads) +
                               "." + std::to_string(kOpsPerThread - 1);
      if (store.wait(peer, std::chrono::milliseconds(10000)).has_value()) {
        found.fetch_add(1);
      }
    });
  }
  for (auto& th : pool) th.join();

  EXPECT_EQ(found.load(), kThreads);
  EXPECT_EQ(store.add("total", 0), kThreads * kOpsPerThread);
  for (int t = 0; t < kThreads; ++t) {
    const auto v =
        store.get("k" + std::to_string(t) + "." + std::to_string(7));
    ASSERT_TRUE(v.has_value());
    EXPECT_EQ(*v, "7");
  }
}

TEST(ConcurrencyStress, AsyncKvStoreParallelSetGetWait) {
  AsyncKvStore store(/*shards=*/4);  // few shards -> real contention
  hammer_store(store);
}

TEST(ConcurrencyStress, BlockingKvStoreParallelSetGetWait) {
  BlockingKvStore store(std::chrono::microseconds(0));
  hammer_store(store);
}

TEST(ConcurrencyStress, MetricsRegistryParallelRegisterAndUpdate) {
  MetricsRegistry registry;
  // All threads race first-use registration of the SAME series (the
  // registry must hand every thread the same cell), race distinct
  // registrations (deque growth under load), and hammer a shared
  // histogram, while a reader thread snapshots concurrently.
  std::atomic<bool> stop{false};
  std::thread reader([&] {
    while (!stop.load()) {
      const auto snap = registry.snapshot();
      for (const auto& s : snap.samples) EXPECT_FALSE(s.name.empty());
      std::this_thread::yield();
    }
  });

  std::vector<std::thread> pool;
  for (int t = 0; t < kThreads; ++t) {
    pool.emplace_back([&registry, t] {
      for (int i = 0; i < kOpsPerThread; ++i) {
        registry.counter("stress_shared_total").add();
        registry
            .counter("stress_labelled_total",
                     {{"thread", std::to_string(t)}})
            .add();
        registry.counter("stress_wave_" + std::to_string(i % 16)).add();
        registry.histogram("stress_latency").observe(static_cast<double>(i));
        registry.gauge("stress_depth", {{"thread", std::to_string(t)}})
            .set(static_cast<double>(i));
      }
    });
  }
  for (auto& th : pool) th.join();
  stop.store(true);
  reader.join();

  const auto snap = registry.snapshot();
  const auto* shared = snap.find("stress_shared_total");
  ASSERT_NE(shared, nullptr);
  EXPECT_DOUBLE_EQ(shared->value, kThreads * kOpsPerThread);
  for (int t = 0; t < kThreads; ++t) {
    const auto* per = snap.find("stress_labelled_total",
                                {{"thread", std::to_string(t)}});
    ASSERT_NE(per, nullptr);
    EXPECT_DOUBLE_EQ(per->value, kOpsPerThread);
  }
  const auto* hist = snap.find("stress_latency");
  ASSERT_NE(hist, nullptr);
  EXPECT_EQ(hist->hist.total(),
            static_cast<std::uint64_t>(kThreads * kOpsPerThread));
  // 1 shared + kThreads labelled + 16 wave + 1 histogram + kThreads gauges.
  EXPECT_EQ(registry.series_count(),
            static_cast<std::size_t>(1 + kThreads + 16 + 1 + kThreads));
}

TEST(ConcurrencyStress, MetricsResetWhileWriting) {
  MetricsRegistry registry;
  std::atomic<bool> stop{false};
  std::thread resetter([&] {
    while (!stop.load()) {
      registry.reset();
      std::this_thread::yield();
    }
  });
  std::vector<std::thread> pool;
  for (int t = 0; t < 4; ++t) {
    pool.emplace_back([&registry] {
      for (int i = 0; i < kOpsPerThread; ++i) {
        registry.counter("reset_race_total").add();
        registry.histogram("reset_race_hist").observe(1.0);
      }
    });
  }
  for (auto& th : pool) th.join();
  stop.store(true);
  resetter.join();
  // Registrations survive resets; values are indeterminate but readable.
  EXPECT_EQ(registry.series_count(), 2u);
  EXPECT_GE(registry.snapshot().find("reset_race_total")->value, 0.0);
}

}  // namespace
