// RunLedger (telemetry/ledger.h): the accounting contract. Ingesting an
// ft::RunReport must reproduce the workflow's own effective-time
// arithmetic, interval rows must partition the window, the series must
// digest deterministically, and the JSONL round trip must be lossless.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "core/rng.h"
#include "core/time.h"
#include "ft/faults.h"
#include "ft/workflow.h"
#include "telemetry/ledger.h"

namespace ms::telemetry {
namespace {

SteadyState steady_175b() {
  SteadyState s;
  s.step_time = seconds(15.0);
  s.mfu = 0.55;
  s.tokens_per_second = 4.0e6;
  return s;
}

/// One ft workflow run plus the ledger that ingested its report.
struct LedgeredRun {
  ft::RunReport report;
  LedgerSeries series;
};

LedgeredRun run_and_ingest(std::uint64_t seed, TimeNs duration = days(2.0)) {
  ft::WorkflowConfig wf;
  wf.nodes = 128;
  Rng fault_rng(derive_seed(seed, "ledger.faults"));
  auto faults = ft::draw_fault_schedule(duration, hours(6.0), wf.nodes,
                                        ft::default_fault_mix(), fault_rng);
  Rng run_rng(derive_seed(seed, "ledger.run"));
  auto report = ft::run_robust_training(wf, duration, faults, run_rng);

  LedgerConfig cfg;
  cfg.duration = duration;
  cfg.interval = hours(1.0);
  RunLedger ledger(cfg);
  ledger.set_steady_state(steady_175b());
  ledger.ingest(report, wf.checkpoint_interval);
  return {report, ledger.finalize()};
}

// ------------------------------------------------------------- closure

TEST(Ledger, EttrClosesAgainstWorkflowAccounting) {
  const auto run = run_and_ingest(0x11);
  ASSERT_GT(run.report.restarts, 0);
  // The ledger replays the workflow's arithmetic; agreement is near-exact,
  // not merely within the fig11 1% gate.
  EXPECT_NEAR(run.series.totals.ettr, run.report.effective_time_ratio, 1e-9);
  EXPECT_EQ(run.series.totals.restarts, run.report.restarts);
}

TEST(Ledger, ClosureHoldsAcrossSeeds) {
  for (std::uint64_t seed : {0x21ull, 0x22ull, 0x23ull}) {
    const auto run = run_and_ingest(seed);
    EXPECT_NEAR(run.series.totals.ettr, run.report.effective_time_ratio,
                1e-9)
        << "seed " << seed;
  }
}

TEST(Ledger, LostTimeDecompositionCoversAllCauses) {
  const auto run = run_and_ingest(0x11);
  const auto& lost = run.series.totals.lost;
  // Fail-stop incidents always produce detection + recovery windows; the
  // workflow also charges periodic checkpoint stalls.
  EXPECT_GT(lost[static_cast<int>(LostCause::kDetection)], 0);
  EXPECT_GT(lost[static_cast<int>(LostCause::kRecovery)], 0);
  EXPECT_GT(lost[static_cast<int>(LostCause::kCkptStall)], 0);
  TimeNs hard = 0;
  for (int c = 0; c < kLostCauseCount; ++c) {
    if (c != static_cast<int>(LostCause::kStraggler)) hard += lost[c];
  }
  const double expect_ettr =
      1.0 - static_cast<double>(hard) / static_cast<double>(run.series.duration);
  EXPECT_NEAR(run.series.totals.ettr, expect_ettr, 1e-12);
}

// ------------------------------------------------------------ intervals

TEST(Ledger, IntervalsPartitionTheWindow) {
  const auto run = run_and_ingest(0x11);
  ASSERT_EQ(run.series.intervals.size(), 48u);  // 2 days / 1 h
  TimeNs prev_end = 0;
  for (const auto& row : run.series.intervals) {
    EXPECT_EQ(row.begin, prev_end);
    EXPECT_GT(row.end, row.begin);
    prev_end = row.end;
    // Clipped per-row accounting: effective + hard lost == row length.
    TimeNs hard = 0;
    for (int c = 0; c < kLostCauseCount; ++c) {
      if (c != static_cast<int>(LostCause::kStraggler)) hard += row.lost[c];
    }
    EXPECT_EQ(row.effective + hard, row.end - row.begin);
    EXPECT_GE(row.goodput_tokens_per_second, 0.0);
    EXPECT_LE(row.mfu, steady_175b().mfu + 1e-12);
  }
  EXPECT_EQ(prev_end, run.series.duration);
  // Cumulative ETTR clips events at the window edge; the totals charge
  // them in full (the ft convention), so clipped >= unclipped.
  EXPECT_GE(run.series.intervals.back().ettr_cum,
            run.series.totals.ettr - 1e-12);
}

TEST(Ledger, RestartMarksLandInTheRightInterval) {
  const auto run = run_and_ingest(0x11);
  int total = 0;
  for (const auto& row : run.series.intervals) total += row.restarts;
  EXPECT_EQ(total, run.report.restarts);
}

// ---------------------------------------------------------- slowdowns

TEST(Ledger, SlowdownDeratesGoodputNotEttr) {
  LedgerConfig cfg;
  cfg.duration = hours(4.0);
  cfg.interval = hours(1.0);
  RunLedger ledger(cfg);
  ledger.set_steady_state(steady_175b());
  // Half the run at half speed: 25% of tokens lost, zero downtime.
  ledger.add_slowdown(0, hours(2.0), 2.0, LostCause::kStraggler);
  const auto series = ledger.finalize();
  EXPECT_DOUBLE_EQ(series.totals.ettr, 1.0);
  EXPECT_NEAR(series.totals.goodput_fraction, 0.75, 1e-9);
  EXPECT_NEAR(series.intervals[0].goodput_tokens_per_second,
              steady_175b().tokens_per_second / 2.0, 1.0);
  EXPECT_NEAR(series.intervals[3].goodput_tokens_per_second,
              steady_175b().tokens_per_second, 1.0);
}

TEST(Ledger, HardLossReducesBothEttrAndGoodput) {
  LedgerConfig cfg;
  cfg.duration = hours(4.0);
  cfg.interval = hours(1.0);
  RunLedger ledger(cfg);
  ledger.set_steady_state(steady_175b());
  ledger.add_lost(hours(1.0), hours(1.0), LostCause::kRecovery);
  ledger.add_restart(hours(1.0));
  const auto series = ledger.finalize();
  EXPECT_NEAR(series.totals.ettr, 0.75, 1e-12);
  EXPECT_NEAR(series.totals.goodput_fraction, 0.75, 1e-9);
  EXPECT_EQ(series.intervals[1].restarts, 1);
  EXPECT_DOUBLE_EQ(series.intervals[1].goodput_tokens_per_second, 0.0);
}

// -------------------------------------------------------- determinism

TEST(Ledger, SameSeedSameDigest) {
  const auto a = run_and_ingest(0x31);
  const auto b = run_and_ingest(0x31);
  EXPECT_EQ(a.series.digest, b.series.digest);
  EXPECT_EQ(ledger_digest(a.series), a.series.digest);
}

TEST(Ledger, DifferentSeedDifferentDigest) {
  const auto a = run_and_ingest(0x31);
  const auto b = run_and_ingest(0x32);
  EXPECT_NE(a.series.digest, b.series.digest);
}

// ------------------------------------------------------------- JSONL

TEST(Ledger, JsonlRoundTripIsLossless) {
  const auto run = run_and_ingest(0x41);
  const std::string text = to_jsonl(run.series);
  LedgerSeries parsed;
  ASSERT_TRUE(parse_ledger_jsonl(text, parsed));
  EXPECT_EQ(parsed.duration, run.series.duration);
  EXPECT_EQ(parsed.interval, run.series.interval);
  ASSERT_EQ(parsed.intervals.size(), run.series.intervals.size());
  for (std::size_t i = 0; i < parsed.intervals.size(); ++i) {
    EXPECT_EQ(parsed.intervals[i].effective,
              run.series.intervals[i].effective);
    EXPECT_EQ(parsed.intervals[i].lost, run.series.intervals[i].lost);
    EXPECT_EQ(parsed.intervals[i].restarts,
              run.series.intervals[i].restarts);
  }
  EXPECT_DOUBLE_EQ(parsed.totals.ettr, run.series.totals.ettr);
  // The recomputed digest of the parsed rows matches the stored one: the
  // serialization dropped nothing the digest folds.
  EXPECT_EQ(ledger_digest(parsed), run.series.digest);
  EXPECT_EQ(parsed.digest, run.series.digest);
}

TEST(Ledger, ParseRejectsGarbage) {
  LedgerSeries out;
  EXPECT_FALSE(parse_ledger_jsonl("not json at all\n", out));
  EXPECT_FALSE(parse_ledger_jsonl("", out));
}

// ---------------------------------------------------------- rendering

TEST(Ledger, RenderMentionsTheHeadlineNumbers) {
  const auto run = run_and_ingest(0x41);
  const std::string text = render(run.series, /*chart=*/false);
  EXPECT_NE(text.find("ETTR"), std::string::npos);
  EXPECT_NE(text.find("restarts"), std::string::npos);
  EXPECT_NE(text.find("recovery"), std::string::npos);
  const std::string with_chart = render(run.series, /*chart=*/true);
  EXPECT_GT(with_chart.size(), text.size());
}

TEST(Ledger, DiffIsCleanOnIdenticalRuns) {
  const auto run = run_and_ingest(0x41);
  const std::string diff = ledger_diff(run.series, run.series);
  EXPECT_NE(diff.find("ETTR"), std::string::npos);
}

// --------------------------------------------------------------- CLI

class LedgerCliTest : public ::testing::Test {
 protected:
  void SetUp() override {
    path_ = ::testing::TempDir() + "ledger_cli_test.jsonl";
    const auto run = run_and_ingest(0x51);
    digest_ = run.series.digest;
    std::ofstream out(path_);
    out << to_jsonl(run.series);
  }
  void TearDown() override { std::remove(path_.c_str()); }

  std::string path_;
  std::uint64_t digest_ = 0;
};

TEST_F(LedgerCliTest, RendersALedgerFile) {
  std::ostringstream out, err;
  EXPECT_EQ(ledger_main({path_, "--no-chart"}, out, err), 0);
  EXPECT_NE(out.str().find("ETTR"), std::string::npos);
  EXPECT_TRUE(err.str().empty()) << err.str();
}

TEST_F(LedgerCliTest, DiffAgainstItselfSucceeds) {
  std::ostringstream out, err;
  EXPECT_EQ(ledger_main({"--diff", path_, path_}, out, err), 0);
}

TEST_F(LedgerCliTest, MissingFileFails) {
  std::ostringstream out, err;
  EXPECT_NE(ledger_main({path_ + ".does-not-exist"}, out, err), 0);
  EXPECT_FALSE(err.str().empty());
}

TEST_F(LedgerCliTest, UsageOnNoArgs) {
  std::ostringstream out, err;
  EXPECT_NE(ledger_main({}, out, err), 0);
}

}  // namespace
}  // namespace ms::telemetry
