#include <gtest/gtest.h>

#include <map>
#include <set>

#include "parallel/mapping.h"
#include "parallel/overlap.h"
#include "parallel/pipeline.h"
#include "parallel/zero.h"
#include "sim/engine.h"
#include "sim/graph.h"

namespace ms::parallel {
namespace {

// --------------------------------------------------------------- mapping

TEST(Mapping, CoordRoundTrip) {
  ParallelConfig cfg{.tp = 8, .pp = 4, .dp = 3};
  for (int r = 0; r < cfg.world(); ++r) {
    EXPECT_EQ(rank_of(coord_of(r, cfg), cfg), r);
  }
}

TEST(Mapping, TpIsFastestVarying) {
  ParallelConfig cfg{.tp = 8, .pp = 2, .dp = 2};
  EXPECT_EQ(coord_of(0, cfg).tp, 0);
  EXPECT_EQ(coord_of(1, cfg).tp, 1);
  EXPECT_EQ(coord_of(7, cfg).tp, 7);
  EXPECT_EQ(coord_of(8, cfg), (RankCoord{.tp = 0, .dp = 1, .pp = 0}));
  EXPECT_EQ(coord_of(16, cfg), (RankCoord{.tp = 0, .dp = 0, .pp = 1}));
}

TEST(Mapping, TpGroupFillsOneNode) {
  ParallelConfig cfg{.tp = 8, .pp = 2, .dp = 4};
  const auto group = tp_group(19, cfg);
  ASSERT_EQ(group.size(), 8u);
  // All members on the same node.
  const int node = node_of(group[0], cfg);
  for (int r : group) EXPECT_EQ(node_of(r, cfg), node);
}

TEST(Mapping, DpGroupCloserThanPpGroup) {
  // The paper orders DP inside PP so DP peers have smaller rank spans.
  ParallelConfig cfg{.tp = 8, .pp = 4, .dp = 4};
  const auto dp = dp_group(0, cfg);
  const auto pp = pp_group(0, cfg);
  EXPECT_LT(dp.back() - dp.front(), pp.back() - pp.front());
}

TEST(Mapping, GroupsPartitionWorld) {
  ParallelConfig cfg{.tp = 4, .pp = 2, .dp = 2};
  // Every rank appears in exactly one TP group.
  std::set<int> seen;
  for (int r = 0; r < cfg.world(); r += cfg.tp) {
    for (int member : tp_group(r, cfg)) {
      EXPECT_TRUE(seen.insert(member).second);
    }
  }
  EXPECT_EQ(seen.size(), static_cast<std::size_t>(cfg.world()));
}

TEST(Mapping, ChunkLayersInterleaved) {
  // 96 layers, pp=8, vpp=6: 48 chunks of 2 layers. Stage 0 owns chunks
  // 0, 8, 16, ... i.e. layers [0,2), [16,18), ...
  ParallelConfig cfg{.tp = 8, .pp = 8, .dp = 1, .vpp = 6};
  auto c00 = chunk_layers(96, cfg, 0, 0);
  EXPECT_EQ(c00.first, 0);
  EXPECT_EQ(c00.count, 2);
  auto c01 = chunk_layers(96, cfg, 0, 1);
  EXPECT_EQ(c01.first, 16);
  auto c71 = chunk_layers(96, cfg, 7, 5);
  EXPECT_EQ(c71.first, (5 * 8 + 7) * 2);
}

TEST(Mapping, ChunkLayersCoverModelExactlyOnce) {
  ParallelConfig cfg{.tp = 8, .pp = 4, .dp = 1, .vpp = 3};
  std::set<int> layers;
  for (int s = 0; s < cfg.pp; ++s) {
    for (int v = 0; v < cfg.vpp; ++v) {
      auto c = chunk_layers(48, cfg, s, v);
      for (int l = c.first; l < c.first + c.count; ++l) {
        EXPECT_TRUE(layers.insert(l).second) << "layer " << l << " duplicated";
      }
    }
  }
  EXPECT_EQ(layers.size(), 48u);
}

// -------------------------------------------------------------- schedule

void check_schedule_complete(int pp, int stage, int vpp, int m) {
  auto sched = schedule_for_stage(pp, stage, vpp, m);
  EXPECT_EQ(sched.size(), static_cast<std::size_t>(2 * m * vpp));
  std::map<std::pair<int, int>, int> fwd_seen, bwd_seen;
  std::map<std::pair<int, int>, std::size_t> fwd_pos;
  for (std::size_t i = 0; i < sched.size(); ++i) {
    const auto& e = sched[i];
    EXPECT_GE(e.chunk, 0);
    EXPECT_LT(e.chunk, vpp);
    EXPECT_GE(e.microbatch, 0);
    EXPECT_LT(e.microbatch, m);
    const auto key = std::make_pair(e.chunk, e.microbatch);
    if (e.pass == PassType::kForward) {
      ++fwd_seen[key];
      fwd_pos[key] = i;
    } else {
      ++bwd_seen[key];
      // Backward must come after the corresponding forward.
      ASSERT_TRUE(fwd_pos.count(key))
          << "B before F for chunk " << e.chunk << " mb " << e.microbatch;
    }
  }
  for (int c = 0; c < vpp; ++c) {
    for (int mb = 0; mb < m; ++mb) {
      const auto key = std::make_pair(c, mb);
      EXPECT_EQ(fwd_seen[key], 1) << "chunk " << c << " mb " << mb;
      EXPECT_EQ(bwd_seen[key], 1) << "chunk " << c << " mb " << mb;
    }
  }
}

TEST(Pipeline, ScheduleCompleteClassic1F1B) {
  for (int stage = 0; stage < 4; ++stage) {
    check_schedule_complete(4, stage, 1, 8);
  }
}

TEST(Pipeline, ScheduleCompleteInterleaved) {
  for (int stage = 0; stage < 3; ++stage) {
    check_schedule_complete(3, stage, 2, 6);
  }
}

TEST(Pipeline, ScheduleCompleteLargeInterleaved) {
  check_schedule_complete(8, 0, 6, 32);
  check_schedule_complete(8, 7, 6, 32);
}

TEST(Pipeline, WarmupCountsClassic) {
  // Classic 1F1B: stage s warms up with pp - s - 1 forwards.
  EXPECT_EQ(warmup_slots(4, 0, 1, 8), 3);
  EXPECT_EQ(warmup_slots(4, 3, 1, 8), 0);
}

TEST(Pipeline, WarmupCountsInterleaved) {
  // Megatron formula: (pp - s - 1)*2 + (vpp - 1)*pp.
  EXPECT_EQ(warmup_slots(3, 0, 2, 6), 2 * 2 + 3);
  EXPECT_EQ(warmup_slots(3, 2, 2, 6), 0 + 3);
}

TEST(Pipeline, WarmupCappedAtTotal) {
  EXPECT_LE(warmup_slots(8, 0, 6, 8), 48);
}

TEST(Pipeline, FirstEntriesAreWarmupForwards) {
  auto sched = schedule_for_stage(4, 1, 2, 8);
  const int warmup = warmup_slots(4, 1, 2, 8);
  for (int i = 0; i < warmup; ++i) {
    EXPECT_EQ(sched[static_cast<std::size_t>(i)].pass, PassType::kForward);
  }
  // Entry right after warmup alternates F,B.
  EXPECT_EQ(sched[static_cast<std::size_t>(warmup)].pass, PassType::kForward);
  EXPECT_EQ(sched[static_cast<std::size_t>(warmup) + 1].pass,
            PassType::kBackward);
}

TEST(Pipeline, LastStageStartsBackwardImmediately) {
  // Classic 1F1B: last stage has no warmup — F then B alternating.
  auto sched = schedule_for_stage(4, 3, 1, 4);
  EXPECT_EQ(sched[0].pass, PassType::kForward);
  EXPECT_EQ(sched[1].pass, PassType::kBackward);
  EXPECT_EQ(sched[0].microbatch, sched[1].microbatch);
}

TEST(Pipeline, InterleavedChunkOrderCyclesEveryPpMicrobatches) {
  // First pp forwards hit chunk 0, next pp hit chunk 1, etc.
  const int pp = 4, vpp = 3, m = 8;
  auto sched = schedule_for_stage(pp, 0, vpp, m);
  for (int k = 0; k < pp; ++k) {
    EXPECT_EQ(sched[static_cast<std::size_t>(k)].chunk, 0);
  }
  for (int k = pp; k < 2 * pp; ++k) {
    EXPECT_EQ(sched[static_cast<std::size_t>(k)].chunk, 1);
  }
}

TEST(Pipeline, BubbleFractionFormula) {
  EXPECT_DOUBLE_EQ(analytic_bubble_fraction(8, 6, 32), 7.0 / 192.0);
  // LAMB: 4x batch with one step vs 4 steps at 1x — bubble / 4 per step,
  // and 4x fewer steps => 87.5% fewer bubble slots per 4-step window... the
  // per-step bubble ratio alone:
  EXPECT_DOUBLE_EQ(analytic_bubble_fraction(8, 6, 128),
                   analytic_bubble_fraction(8, 6, 32) / 4.0);
}

// A small end-to-end check: run the schedule of every stage on the graph
// executor with p2p dependencies and verify the makespan matches the
// analytic bubble model for classic 1F1B.
TEST(Pipeline, SimulatedMakespanMatchesBubbleModel) {
  const int pp = 4, m = 16;
  const TimeNs f = milliseconds(1.0);
  const TimeNs b = 2 * f;

  sim::Engine engine;
  sim::GraphExecutor g(static_cast<std::size_t>(pp));
  // op ids for F/B of (stage, microbatch)
  std::map<std::tuple<int, int, int>, sim::OpId> ops;  // (stage,mb,is_bwd)
  for (int s = 0; s < pp; ++s) {
    auto sched = schedule_for_stage(pp, s, 1, m);
    sim::OpId prev = sim::kInvalidOp;
    for (const auto& e : sched) {
      const bool is_bwd = e.pass == PassType::kBackward;
      sim::OpId op = g.add_op({.name = "op",
                               .stream = static_cast<sim::StreamId>(s),
                               .duration = is_bwd ? b : f});
      ops[{s, e.microbatch, is_bwd}] = op;
      if (prev != sim::kInvalidOp) g.add_dep(prev, op);  // program order
      prev = op;
    }
  }
  // Data dependencies: F(s,mb) after F(s-1,mb); B(s,mb) after B(s+1,mb);
  // B(last,mb) after F(last,mb).
  for (int s = 0; s < pp; ++s) {
    for (int mb = 0; mb < m; ++mb) {
      if (s > 0) g.add_dep(ops[{s - 1, mb, 0}], ops[{s, mb, 0}]);
      if (s < pp - 1) g.add_dep(ops[{s + 1, mb, 1}], ops[{s, mb, 1}]);
    }
  }
  const TimeNs makespan = g.run(engine);
  // 1F1B: T = (m + p - 1) * (f + b) for f:b = 1:2 and no comm.
  EXPECT_EQ(makespan, (m + pp - 1) * (f + b));
}

// ------------------------------------------------------------------ zero

TEST(Zero2, ShardingArithmetic) {
  ParallelConfig cfg{.tp = 8, .pp = 8, .dp = 4, .vpp = 6};
  Zero2Sharding z(175e9, cfg);
  EXPECT_NEAR(z.params_per_gpu(), 175e9 / 64, 1);
  EXPECT_NEAR(z.params_per_chunk(), 175e9 / 64 / 6, 1);
  EXPECT_NEAR(z.optimizer_shard_params(), 175e9 / 64 / 4, 1);
  EXPECT_EQ(z.allgather_bytes_per_chunk(),
            static_cast<Bytes>(175e9 / 64 / 6 * 2));
}

TEST(Zero2, CheckpointBytesIncludeOptimizerShard) {
  ParallelConfig cfg{.tp = 8, .pp = 8, .dp = 4, .vpp = 1};
  Zero2Sharding z(175e9, cfg);
  const Bytes params_bf16 = static_cast<Bytes>(175e9 / 64 * 2);
  EXPECT_GT(z.checkpoint_bytes_per_gpu(), params_bf16);
}

TEST(Zero2, DpDoesNotChangeCollectiveVolume) {
  // ZeRO-2's promise: reduce-scatter + all-gather together move the same
  // bytes as the all-reduce they replace (per the ring formulations both
  // are 2*(n-1)/n * S).
  ParallelConfig cfg4{.tp = 8, .pp = 8, .dp = 4};
  ParallelConfig cfg8{.tp = 8, .pp = 8, .dp = 8};
  Zero2Sharding z4(175e9, cfg4), z8(175e9, cfg8);
  EXPECT_EQ(z4.allgather_bytes_per_chunk(), z8.allgather_bytes_per_chunk());
}

// --------------------------------------------------------------- overlap

TEST(Overlap, NoChunkingIsSerial) {
  auto r = chunked_overlap(seconds(1.0), seconds(0.5), 1);
  EXPECT_EQ(r.total, seconds(1.5));
  EXPECT_EQ(r.exposed_comm, seconds(0.5));
}

TEST(Overlap, ManyChunksApproachMax) {
  auto r = chunked_overlap(seconds(1.0), seconds(0.5), 1000);
  EXPECT_NEAR(to_seconds(r.total), 1.0, 0.001);
  EXPECT_NEAR(to_seconds(r.exposed_comm), 0.0, 0.001);
}

TEST(Overlap, CommBoundExposesDifference) {
  auto r = chunked_overlap(seconds(0.5), seconds(1.0), 1000);
  EXPECT_NEAR(to_seconds(r.total), 1.0, 0.001);
  EXPECT_NEAR(to_seconds(r.exposed_comm), 0.5, 0.001);
}

// Validate the closed form against an explicit chunk-pipeline on the
// event-driven executor.
TEST(Overlap, ClosedFormMatchesGraphExecutor) {
  const TimeNs compute = milliseconds(8.0);
  const TimeNs comm = milliseconds(4.0);
  for (int chunks : {2, 4, 8}) {
    sim::Engine engine;
    sim::GraphExecutor g(2);
    // comm chunk k must precede compute chunk k (all-gather before GEMM).
    sim::OpId prev_comm = sim::kInvalidOp;
    std::vector<sim::OpId> comm_ops, compute_ops;
    for (int k = 0; k < chunks; ++k) {
      sim::OpId c = g.add_op(
          {.name = "comm", .stream = 0, .duration = comm / chunks});
      if (prev_comm != sim::kInvalidOp) g.add_dep(prev_comm, c);
      prev_comm = c;
      comm_ops.push_back(c);
      sim::OpId x = g.add_op(
          {.name = "gemm", .stream = 1, .duration = compute / chunks});
      g.add_dep(c, x);
      compute_ops.push_back(x);
    }
    const TimeNs makespan = g.run(engine);
    const auto closed = chunked_overlap(compute, comm, chunks);
    EXPECT_EQ(makespan, closed.total) << "chunks=" << chunks;
  }
}

}  // namespace
}  // namespace ms::parallel
