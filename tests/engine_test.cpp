#include <gtest/gtest.h>

#include "engine/job.h"
#include "engine/perturb.h"

namespace ms::engine {
namespace {

JobConfig base_config(int gpus = 256, int batch = 256) {
  JobConfig cfg;
  cfg.model = model::config_175b();
  cfg.par.tp = 8;
  cfg.par.pp = 8;
  cfg.par.vpp = 6;
  cfg.par.dp = gpus / 64;
  cfg.global_batch = batch;
  cfg.ops = model::OperatorProfile::megatron_baseline();
  cfg.overlap = OverlapOptions::megatron_lm();
  return cfg;
}

JobConfig megascale_config(int gpus = 256, int batch = 256) {
  JobConfig cfg = base_config(gpus, batch);
  cfg.model.parallel_block = true;
  cfg.model.attention = model::AttentionKind::kSlidingWindow;
  cfg.model.window = 512;
  cfg.ops = model::OperatorProfile::megascale();
  cfg.overlap = OverlapOptions::megascale();
  return cfg;
}

// -------------------------------------------------------------- validate

TEST(Validate, AcceptsPaperConfigs) {
  EXPECT_EQ(validate(base_config()), "");
  EXPECT_EQ(validate(megascale_config(12288, 6144)), "");
}

TEST(Validate, RejectsIndivisibleBatch) {
  auto cfg = base_config();
  cfg.global_batch = 255;  // not divisible by dp=4
  EXPECT_NE(validate(cfg), "");
}

TEST(Validate, RejectsBadMicrobatchCount) {
  auto cfg = base_config();
  cfg.global_batch = cfg.par.dp * 12;  // m=12, not divisible by pp=8
  EXPECT_NE(validate(cfg), "");
}

TEST(Validate, RejectsBadLayerSplit) {
  auto cfg = base_config();
  cfg.model.layers = 90;  // not divisible by pp*vpp=48
  EXPECT_NE(validate(cfg), "");
}

TEST(Validate, RejectsWrongStageSpeedSize) {
  auto cfg = base_config();
  cfg.stage_speed = {1.0, 1.0};
  EXPECT_NE(validate(cfg), "");
}

// ------------------------------------------------------------- iteration

TEST(Iteration, MegaScaleBeatsMegatron) {
  const auto mg = simulate_iteration(base_config());
  const auto msc = simulate_iteration(megascale_config());
  EXPECT_LT(msc.iteration_time, mg.iteration_time);
  EXPECT_GT(msc.mfu, mg.mfu);
  const double speedup = msc.mfu / mg.mfu;
  EXPECT_GT(speedup, 1.15);
  EXPECT_LT(speedup, 1.55);
}

TEST(Iteration, MfuInPaperBallpark256Gpus) {
  // Paper Table 3: Megatron baseline 47.7%, full MegaScale 65.3% @ BS 256.
  const auto mg = simulate_iteration(base_config());
  EXPECT_GT(mg.mfu, 0.42);
  EXPECT_LT(mg.mfu, 0.58);
  const auto msc = simulate_iteration(megascale_config(256, 768));
  EXPECT_GT(msc.mfu, 0.60);
  EXPECT_LT(msc.mfu, 0.72);
}

TEST(Iteration, MfuDeclinesWithScaleAtFixedBatch) {
  // Paper Table 2: strong scaling with batch 6144 decreases MFU.
  const auto small = simulate_iteration(megascale_config(3072, 6144));
  const auto large = simulate_iteration(megascale_config(12288, 6144));
  EXPECT_GT(small.mfu, large.mfu);
  // Iteration time still improves with more GPUs.
  EXPECT_LT(large.iteration_time, small.iteration_time);
}

TEST(Iteration, ThroughputConsistentWithIterationTime) {
  const auto cfg = megascale_config();
  const auto r = simulate_iteration(cfg);
  EXPECT_NEAR(r.tokens_per_second,
              cfg.tokens_per_iteration() / to_seconds(r.iteration_time), 1.0);
  EXPECT_GT(r.aggregate_pflops, 0);
}

TEST(Iteration, EveryOverlapKnobHelps) {
  auto cfg = base_config();
  cfg.model.parallel_block = true;
  double prev = simulate_iteration(cfg).mfu;
  cfg.overlap.tp_overlap = true;
  double with_tp = simulate_iteration(cfg).mfu;
  EXPECT_GT(with_tp, prev);
  cfg.overlap.pp_decouple = true;
  double with_pp = simulate_iteration(cfg).mfu;
  EXPECT_GT(with_pp, with_tp);
  cfg.overlap.dp_overlap = true;
  double with_dp = simulate_iteration(cfg).mfu;
  EXPECT_GT(with_dp, with_pp);
  cfg.overlap.async_data_pipeline = true;
  EXPECT_GT(simulate_iteration(cfg).mfu, with_dp);
}

TEST(Iteration, ParallelBlockHelps) {
  auto cfg = base_config();
  const double serial = simulate_iteration(cfg).mfu;
  cfg.model.parallel_block = true;
  EXPECT_GT(simulate_iteration(cfg).mfu, serial);
}

TEST(Iteration, SlidingWindowHelps) {
  auto cfg = base_config();
  cfg.model.parallel_block = true;
  const double full = simulate_iteration(cfg).mfu;
  cfg.model.attention = model::AttentionKind::kSlidingWindow;
  cfg.model.window = 512;
  EXPECT_GT(simulate_iteration(cfg).mfu, full);
}

TEST(Iteration, LargerBatchReducesBubble) {
  // LAMB effect: 3x batch raises MFU (§3.1).
  const auto small = simulate_iteration(megascale_config(256, 256));
  const auto large = simulate_iteration(megascale_config(256, 768));
  EXPECT_GT(large.mfu, small.mfu);
}

TEST(Iteration, EfficientOperatorsHelp) {
  auto cfg = base_config();
  const double naive = simulate_iteration(cfg).mfu;
  cfg.ops = model::OperatorProfile::megascale();
  EXPECT_GT(simulate_iteration(cfg).mfu, naive);
}

TEST(Iteration, DegradedNetworkHurtsMegatronMore) {
  auto mg = base_config();
  auto msc = megascale_config();
  mg.network_efficiency = 1.0;
  msc.network_efficiency = 1.0;
  const double mg_full = simulate_iteration(mg).mfu;
  const double msc_full = simulate_iteration(msc).mfu;
  mg.network_efficiency = 0.5;
  msc.network_efficiency = 0.5;
  const double mg_deg = simulate_iteration(mg).mfu;
  const double msc_deg = simulate_iteration(msc).mfu;
  // Overlapping hides most of the slowdown.
  EXPECT_GT(mg_full - mg_deg, msc_full - msc_deg);
}

TEST(Iteration, DpExposureShrinksWithOverlap) {
  auto cfg = base_config();
  const auto bucketed = simulate_iteration(cfg);
  cfg.overlap.dp_overlap = true;
  const auto overlapped = simulate_iteration(cfg);
  EXPECT_LT(overlapped.breakdown.dp_exposed, bucketed.breakdown.dp_exposed);
}

TEST(Iteration, AsyncDataPipelineRemovesExposedLoad) {
  auto cfg = base_config();
  cfg.data_pipeline_time = milliseconds(500.0);
  const auto exposed = simulate_iteration(cfg);
  EXPECT_GE(exposed.breakdown.data_pipeline, milliseconds(500.0));
  cfg.overlap.async_data_pipeline = true;
  const auto hidden = simulate_iteration(cfg);
  EXPECT_EQ(hidden.breakdown.data_pipeline, 0);
}

TEST(Iteration, StageSlowdownStretchesIteration) {
  auto cfg = megascale_config();
  const auto nominal = simulate_iteration(cfg);
  cfg.stage_speed = std::vector<double>(8, 1.0);
  cfg.stage_speed[3] = 1.10;  // the paper's ~10%-slower straggler host
  const auto slowed = simulate_iteration(cfg);
  EXPECT_GT(slowed.iteration_time, nominal.iteration_time);
  // One slow stage gates the whole pipeline: closer to 10% than to 10%/8.
  const double stretch = to_seconds(slowed.iteration_time) /
                         to_seconds(nominal.iteration_time);
  EXPECT_GT(stretch, 1.04);
}

TEST(Iteration, SpansCoverAllTags) {
  const auto r = simulate_iteration(megascale_config());
  bool fwd = false, bwd = false, dp = false, pp = false, opt = false;
  for (const auto& rec : r.spans) {
    EXPECT_TRUE(rec.done());
    fwd |= rec.tag == "fwd";
    bwd |= rec.tag == "bwd";
    dp |= rec.tag == "dp-comm";
    pp |= rec.tag == "pp-comm";
    opt |= rec.tag == "optimizer";
  }
  EXPECT_TRUE(fwd && bwd && dp && pp && opt);
}

TEST(Iteration, TrainingDays300BTokens) {
  // Table 2 reports days for 300B tokens; MegaScale @256 GPUs ~ 70.86 days.
  const auto r = simulate_iteration(megascale_config(256, 768));
  const double days = training_days(300e9, r.tokens_per_second);
  EXPECT_GT(days, 55.0);
  EXPECT_LT(days, 90.0);
}

TEST(Iteration, DataParallelScalingNearLinear) {
  // Same per-replica microbatch count, more replicas => similar iteration
  // time (weak scaling), so throughput scales ~linearly.
  const auto one = simulate_iteration(megascale_config(256, 256));
  const auto four = simulate_iteration(megascale_config(1024, 1024));
  const double ratio = four.tokens_per_second / one.tokens_per_second;
  EXPECT_GT(ratio, 3.5);
  EXPECT_LT(ratio, 4.05);
}

// -------------------------------------------------------------- perturb

TEST(Perturb, MachineSpeedsRespectPopulation) {
  Rng rng(7);
  StragglerPopulation pop;
  pop.slow_fraction = 0.10;
  pop.slow_factor = 1.5;
  pop.jitter_sigma = 0.0;
  auto speeds = sample_machine_speeds(10000, pop, rng);
  int slow = 0;
  for (double s : speeds) {
    if (s > 1.2) ++slow;
  }
  EXPECT_NEAR(static_cast<double>(slow) / 10000.0, 0.10, 0.02);
}

TEST(Perturb, FoldWithNominalSpeedsIsIdentity) {
  const auto cfg = megascale_config();
  const auto base = simulate_iteration(cfg);
  std::vector<double> nominal(static_cast<std::size_t>(cfg.gpus() / 8), 1.0);
  const auto fold = fold_stragglers(base, cfg, nominal);
  EXPECT_EQ(fold.iteration_time, base.iteration_time);
  EXPECT_DOUBLE_EQ(fold.mfu, base.mfu);
}

TEST(Perturb, OneSlowMachineGatesTheJob) {
  const auto cfg = megascale_config();
  const auto base = simulate_iteration(cfg);
  std::vector<double> speeds(static_cast<std::size_t>(cfg.gpus() / 8), 1.0);
  speeds[5] = 1.10;
  const auto fold = fold_stragglers(base, cfg, speeds);
  EXPECT_GT(fold.iteration_time, base.iteration_time);
  EXPECT_LT(fold.mfu, base.mfu);
  EXPECT_EQ(fold.slow_machines, 1);
  EXPECT_DOUBLE_EQ(fold.worst_factor, 1.10);
}

TEST(Perturb, EvictingStragglersRecoverssMfu) {
  // Paper §6.3: removing problematic hosts improved MFU ~0.7%.
  const auto cfg = megascale_config(1024, 1024);
  const auto base = simulate_iteration(cfg);
  Rng rng(11);
  StragglerPopulation pop;  // 0.5% slow at 1.10x
  auto speeds = sample_machine_speeds(cfg.gpus() / 8, pop, rng);
  const auto with = fold_stragglers(base, cfg, speeds);
  // Evict: clamp all factors to the healthy jitter range.
  auto healthy = speeds;
  for (auto& s : healthy) s = std::min(s, 1.02);
  const auto without = fold_stragglers(base, cfg, healthy);
  EXPECT_GE(without.mfu, with.mfu);
}

TEST(Perturb, ProblematicCodeDecaysMfu) {
  const auto cfg = megascale_config();
  const auto base = simulate_iteration(cfg);
  Rng rng(13);
  PerturbConfig perturb;
  auto decayed = mfu_over_time(base, cfg, perturb, 2000, true, {}, rng);
  Rng rng2(13);
  auto stable = mfu_over_time(base, cfg, perturb, 2000, false, {}, rng2);
  // The drift run degrades over time; the fixed run does not.
  const double decayed_drop = decayed.y.front() - decayed.tail_mean(100);
  const double stable_drop = stable.y.front() - stable.tail_mean(100);
  EXPECT_GT(decayed_drop, stable_drop + 0.01);
  // Fixed-code MFU stays near the base value.
  EXPECT_NEAR(stable.tail_mean(100), base.mfu, 0.02);
}

TEST(Perturb, DifferentClusterSamplesGiveDifferentMfu) {
  // Figure 6: stochastic machine scheduling => inconsistent MFU across runs.
  const auto cfg = megascale_config(12288, 6144);
  const auto base = simulate_iteration(cfg);
  StragglerPopulation pop;
  std::vector<double> mfus;
  for (int trial = 0; trial < 5; ++trial) {
    Rng rng(100 + static_cast<std::uint64_t>(trial));
    auto speeds = sample_machine_speeds(cfg.gpus() / 8, pop, rng);
    mfus.push_back(fold_stragglers(base, cfg, speeds).mfu);
  }
  double lo = mfus[0], hi = mfus[0];
  for (double m : mfus) {
    lo = std::min(lo, m);
    hi = std::max(hi, m);
  }
  EXPECT_GT(hi - lo, 0.001);  // visible spread across trials
}

}  // namespace
}  // namespace ms::engine
