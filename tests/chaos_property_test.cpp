// Property tests for the chaos harness (label: chaos).
//
// Two families:
//   * determinism — same (config, scenario, seed) must reproduce the exact
//     OutcomeRecord, engine digest included, run after run;
//   * monotonicity — injecting MORE faults never increases the
//     effective-time ratio: every prefix of a canonical schedule scores at
//     least as well as any longer prefix.
#include <gtest/gtest.h>

#include "chaos/outcome.h"
#include "chaos/runner.h"
#include "chaos/scenario.h"
#include "support/builders.h"
#include "support/digest.h"

namespace ms::chaos {
namespace {

using testsupport::small_chaos_config;

TEST(ChaosProperty, EveryScenarioIsSeedDeterministic) {
  const auto cfg = small_chaos_config();
  for (const auto& scenario : scenarios()) {
    for (std::uint64_t seed : {1ull, 99ull, 4242ull}) {
      auto [a, b] = testsupport::twice(
          [&] { return run_scenario(cfg, scenario, seed); });
      EXPECT_TRUE(identical(a, b))
          << scenario.name << " seed " << seed << " diverged";
      EXPECT_EQ(a.record_digest, b.record_digest) << scenario.name;
      EXPECT_EQ(a.engine_digest, b.engine_digest) << scenario.name;
      EXPECT_EQ(a.schedule_digest, b.schedule_digest) << scenario.name;
    }
  }
}

TEST(ChaosProperty, RecordDigestIsRecomputable) {
  const auto cfg = small_chaos_config();
  for (const auto& scenario : scenarios()) {
    const auto record = run_scenario(cfg, scenario, 17);
    EXPECT_EQ(record.record_digest, compute_record_digest(record))
        << scenario.name;
  }
}

// Adding a fault never increases the effective-time ratio. Exercised as
// prefix monotonicity over canonical (time-sorted) mixed schedules: prefix
// k+1 = prefix k plus one more fault.
TEST(ChaosProperty, PrefixMonotonicity) {
  const auto cfg = small_chaos_config();
  const auto* mixed = find_scenario("mixed");
  ASSERT_NE(mixed, nullptr);
  for (std::uint64_t seed : {3ull, 8ull, 21ull, 34ull}) {
    const auto full = generate_schedule(cfg, *mixed, seed);
    ASSERT_GE(full.size(), 2u) << "seed " << seed << " drew a thin schedule";
    double prev = 2.0;  // above any reachable ratio
    for (std::size_t k = 0; k <= full.size(); ++k) {
      const FaultSchedule prefix(full.begin(),
                                 full.begin() + static_cast<long>(k));
      const auto record = run_schedule(cfg, "prefix", seed, prefix);
      EXPECT_LE(record.effective_time_ratio, prev + 1e-9)
          << "seed " << seed << ": adding fault " << k << " ("
          << (k > 0 ? describe(full[k - 1]) : std::string("none"))
          << ") raised the ratio";
      prev = record.effective_time_ratio;
    }
  }
}

TEST(ChaosProperty, RatioStaysInUnitInterval) {
  const auto cfg = small_chaos_config();
  for (const auto& scenario : scenarios()) {
    for (std::uint64_t seed : {2ull, 13ull}) {
      const auto record = run_scenario(cfg, scenario, seed);
      EXPECT_GE(record.effective_time_ratio, 0.0) << scenario.name;
      EXPECT_LE(record.effective_time_ratio, 1.0) << scenario.name;
      EXPECT_GE(record.slowdown_factor, 1.0) << scenario.name;
    }
  }
}

}  // namespace
}  // namespace ms::chaos
