// Tests for the multi-hop congestion-control model: PFC cascades and
// head-of-line victim flows (§3.6).
#include <gtest/gtest.h>

#include "net/ccsim_multi.h"

namespace ms::net {
namespace {

MultiCcParams uncongested() {
  MultiCcParams p;
  p.hops = 3;
  p.flows = {{0, 2, 25e9}};  // one flow, plenty of capacity
  p.duration_s = 0.02;
  return p;
}

TEST(MultiCc, SingleFlowRunsAtLineRate) {
  auto r = run_multi_cc_sim(uncongested(),
                            [] { return std::make_unique<MegaScaleCc>(); });
  ASSERT_EQ(r.flow_goodput_frac.size(), 1u);
  EXPECT_GT(r.flow_goodput_frac[0], 0.9);
  for (double pause : r.hop_pause_fraction) EXPECT_DOUBLE_EQ(pause, 0.0);
}

TEST(MultiCc, GoodputNeverExceedsLineRate) {
  MultiCcParams p;
  p.hops = 2;
  for (int i = 0; i < 8; ++i) p.flows.push_back({0, 1, 25e9});
  p.duration_s = 0.02;
  auto r = run_multi_cc_sim(p, [] { return std::make_unique<Swift>(); });
  for (double g : r.flow_goodput_frac) {
    EXPECT_LE(g, 1.0 + 1e-9);
    EXPECT_GE(g, 0.0);
  }
}

TEST(MultiCc, BottleneckHopHasDeepestQueue) {
  MultiCcParams p;
  p.hops = 3;
  // Early hops can absorb even the initial full-line-rate burst, so with
  // PFC disabled the only queue that ever builds is the bottleneck's.
  // (With PFC on, upstream queues legitimately grow PAST the bottleneck's
  // while their egress is paused — that is what headroom buffers absorb.)
  p.hop_capacities = {500e9, 500e9, 25e9};
  p.pfc_pause = 1e18;  // disable PFC for this invariant
  p.pfc_resume = 1e18;
  for (int i = 0; i < 16; ++i) p.flows.push_back({0, 2, 25e9});
  p.duration_s = 0.02;
  auto r = run_multi_cc_sim(p, [] { return std::make_unique<Dcqcn>(); });
  EXPECT_GT(r.hop_max_queue[2], r.hop_max_queue[0]);
  EXPECT_GT(r.hop_max_queue[2], r.hop_max_queue[1]);
}

TEST(MultiCc, AggregateBoundedByBottleneck) {
  MultiCcParams p;
  p.hops = 2;
  p.hop_capacities = {100e9, 25e9};
  for (int i = 0; i < 8; ++i) p.flows.push_back({0, 1, 25e9});
  p.duration_s = 0.03;
  auto r = run_multi_cc_sim(p, [] { return std::make_unique<MegaScaleCc>(); });
  double delivered = 0;
  for (double g : r.flow_goodput_frac) delivered += g * 25e9;
  EXPECT_LE(delivered, 25e9 * 1.05);  // small slack for the drain tail
}

TEST(MultiCc, PfcCascadePropagatesUpstream) {
  // Heavy incast into a slow last hop with shallow buffers: the pause must
  // reach hop 0's egress at least briefly (the cascade).
  MultiCcParams p;
  p.hops = 3;
  p.hop_capacities = {200e9, 200e9, 25e9};
  p.pfc_pause = 600e3;
  p.pfc_resume = 500e3;
  for (int i = 0; i < 32; ++i) p.flows.push_back({0, 2, 25e9});
  p.duration_s = 0.02;
  auto r = run_multi_cc_sim(p, [] { return std::make_unique<Dcqcn>(); });
  EXPECT_GT(r.hop_pause_events[1], 0);  // hop1 paused by queue2
}

// ---------------------------------------------------------------- victim

TEST(Victim, InnocentFlowHurtByPfcCollateral) {
  // The victim shares NO queue with the incast; any slowdown is pure PFC.
  auto r = run_victim_scenario(32, [] { return std::make_unique<Dcqcn>(); });
  EXPECT_LT(r.victim_goodput, 0.99);
  EXPECT_GT(r.victim_goodput, 0.5);
}

TEST(Victim, HybridProtectsVictimBetterThanDcqcn) {
  for (int senders : {16, 32, 64}) {
    auto dcqcn =
        run_victim_scenario(senders, [] { return std::make_unique<Dcqcn>(); });
    auto hybrid = run_victim_scenario(
        senders, [] { return std::make_unique<MegaScaleCc>(); });
    EXPECT_GT(hybrid.victim_goodput, dcqcn.victim_goodput)
        << senders << " senders";
  }
}

TEST(Victim, NoIncastMeansNoCollateral) {
  auto r = run_victim_scenario(1, [] { return std::make_unique<MegaScaleCc>(); });
  EXPECT_GT(r.victim_goodput, 0.95);
}

}  // namespace
}  // namespace ms::net
