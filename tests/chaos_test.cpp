// Tier-1 unit coverage for the chaos harness: schedules, scenarios,
// outcome records, the runner, the oracle and the shrinker — all on the
// compressed test configuration so the suite stays fast.
#include <gtest/gtest.h>

#include <fstream>
#include <set>
#include <sstream>
#include <string>

#include "chaos/campaign.h"
#include "chaos/config.h"
#include "chaos/outcome.h"
#include "chaos/runner.h"
#include "chaos/scenario.h"
#include "chaos/schedule.h"
#include "support/builders.h"
#include "support/digest.h"
#include "telemetry/metrics.h"
#include "support/json.h"
#include "support/tmpdir.h"

namespace ms::chaos {
namespace {

using testsupport::small_chaos_config;

InjectedFault fail_stop_at(TimeNs at, int node, ft::FaultType type) {
  InjectedFault f;
  f.at = at;
  f.kind = FaultKind::kFailStop;
  f.node = node;
  f.fail_type = type;
  return f;
}

// ------------------------------------------------------------- schedule

TEST(Schedule, SortIsCanonical) {
  FaultSchedule s;
  s.push_back(fail_stop_at(minutes(10.0), 3, ft::FaultType::kCudaError));
  s.push_back(fail_stop_at(minutes(5.0), 7, ft::FaultType::kSegFault));
  InjectedFault stall;
  stall.at = minutes(5.0);
  stall.kind = FaultKind::kCkptStall;
  stall.duration = seconds(30.0);
  s.push_back(stall);
  sort_schedule(s);
  EXPECT_EQ(s[0].at, minutes(5.0));
  EXPECT_EQ(s[0].kind, FaultKind::kFailStop);  // kFailStop sorts before stall
  EXPECT_EQ(s[1].kind, FaultKind::kCkptStall);
  EXPECT_EQ(s[2].at, minutes(10.0));
}

TEST(Schedule, DigestSeparatesFieldChanges) {
  FaultSchedule a{fail_stop_at(minutes(1.0), 0, ft::FaultType::kCudaError)};
  FaultSchedule b = a;
  EXPECT_EQ(schedule_digest(a), schedule_digest(b));
  b[0].node = 1;
  EXPECT_NE(schedule_digest(a), schedule_digest(b));
  b = a;
  b[0].at += 1;
  EXPECT_NE(schedule_digest(a), schedule_digest(b));
  EXPECT_NE(schedule_digest(a), schedule_digest({}));
}

TEST(Schedule, DescribeNamesEveryKind) {
  std::set<std::string> names;
  for (FaultKind kind :
       {FaultKind::kFailStop, FaultKind::kStraggler, FaultKind::kLinkFlap,
        FaultKind::kCkptStall, FaultKind::kPfcStorm, FaultKind::kEcmpRehash}) {
    names.insert(fault_kind_name(kind));
    InjectedFault f;
    f.kind = kind;
    EXPECT_NE(describe(f).find(fault_kind_name(kind)), std::string::npos);
  }
  EXPECT_EQ(names.size(), 6u);
}

// ------------------------------------------------------------- scenarios

TEST(Scenario, RegistryHasTheCanonicalSet) {
  const auto& all = scenarios();
  EXPECT_GE(all.size(), 6u);
  for (const char* name :
       {"clean", "failstop-midstep", "allgather-flap", "straggler-ckpt-stall",
        "ecmp-cascade", "pfc-storm", "mixed"}) {
    EXPECT_NE(find_scenario(name), nullptr) << name;
  }
  EXPECT_EQ(find_scenario("no-such-scenario"), nullptr);
}

TEST(Scenario, GeneratedSchedulesAreSortedAndSeedStable) {
  const auto cfg = small_chaos_config();
  for (const auto& scenario : scenarios()) {
    const auto a = generate_schedule(cfg, scenario, 42);
    const auto b = generate_schedule(cfg, scenario, 42);
    EXPECT_EQ(schedule_digest(a), schedule_digest(b)) << scenario.name;
    for (std::size_t i = 1; i < a.size(); ++i) {
      EXPECT_LE(a[i - 1].at, a[i].at) << scenario.name;
    }
    for (const auto& fault : a) {
      EXPECT_GE(fault.at, 0) << scenario.name;
      EXPECT_LT(fault.at, cfg.duration) << scenario.name;
    }
  }
}

TEST(Scenario, DifferentSeedsDiverge) {
  const auto cfg = small_chaos_config();
  const auto* mixed = find_scenario("mixed");
  ASSERT_NE(mixed, nullptr);
  EXPECT_NE(schedule_digest(generate_schedule(cfg, *mixed, 1)),
            schedule_digest(generate_schedule(cfg, *mixed, 2)));
}

// ------------------------------------------------------------- outcomes

OutcomeRecord sample_record() {
  const auto cfg = small_chaos_config();
  const auto* s = find_scenario("straggler-ckpt-stall");
  return run_scenario(cfg, *s, 7);
}

TEST(Outcome, JsonRoundTripsBitExactly) {
  const auto record = sample_record();
  OutcomeRecord parsed;
  ASSERT_TRUE(from_json(to_json(record), parsed));
  EXPECT_TRUE(identical(record, parsed));
}

TEST(Outcome, JsonIsWellFormed) {
  const auto doc = testjson::parse(to_json(sample_record()));
  ASSERT_TRUE(doc.is_object());
  EXPECT_TRUE(doc.has("scenario"));
  EXPECT_TRUE(doc.has("effective_time_ratio"));
  EXPECT_TRUE(doc.has("record_digest"));
  EXPECT_TRUE(doc.at("detect_latency").is_object());
}

TEST(Outcome, DigestCoversEveryScalarField) {
  auto record = sample_record();
  const auto base = compute_record_digest(record);
  auto mutated = record;
  mutated.restarts += 1;
  EXPECT_NE(compute_record_digest(mutated), base);
  mutated = record;
  mutated.effective_time_ratio += 1e-9;
  EXPECT_NE(compute_record_digest(mutated), base);
  mutated = record;
  mutated.recovery_latency.p95 += 1;
  EXPECT_NE(compute_record_digest(mutated), base);
}

TEST(Outcome, DiffRespectsTolerances) {
  const auto want = sample_record();
  auto got = want;
  EXPECT_TRUE(diff_outcomes(got, want, Tolerance{}).empty());
  got.effective_time_ratio = want.effective_time_ratio + 0.5;
  EXPECT_FALSE(diff_outcomes(got, want, Tolerance{}).empty());
  got = want;
  got.restarts += 1;  // counts compare exactly
  EXPECT_FALSE(diff_outcomes(got, want, Tolerance{}).empty());
}

// ------------------------------------------------------------- runner

TEST(Runner, CleanRunIsPerfect) {
  const auto cfg = small_chaos_config();
  const auto record = run_scenario(cfg, *find_scenario("clean"), 1);
  EXPECT_DOUBLE_EQ(record.effective_time_ratio, 1.0);
  EXPECT_DOUBLE_EQ(record.slowdown_factor, 1.0);
  EXPECT_EQ(record.restarts, 0);
  EXPECT_EQ(record.undetected_faults, 0);
  EXPECT_EQ(record.steps_lost, 0);
}

TEST(Runner, SingleFailStopRecoversAndCosts) {
  const auto cfg = small_chaos_config();
  const FaultSchedule schedule{
      fail_stop_at(minutes(8.0), 3, ft::FaultType::kCudaError)};
  const auto record = run_schedule(cfg, "unit", 11, schedule);
  EXPECT_EQ(record.restarts, 1);
  EXPECT_EQ(record.undetected_faults, 0);
  EXPECT_LT(record.effective_time_ratio, 1.0);
  EXPECT_GT(record.effective_time_ratio, 0.0);
  EXPECT_EQ(record.detect_latency.count, 1);
  // Explicit CUDA errors surface within one heartbeat interval.
  EXPECT_LE(record.detect_latency.max, cfg.detector.heartbeat_interval * 2);
  EXPECT_GT(record.steps_lost, 0);  // 8 min past the last checkpoint redone
}

TEST(Runner, SameSeedSameRecord) {
  const auto cfg = small_chaos_config();
  const auto* mixed = find_scenario("mixed");
  auto [a, b] = testsupport::twice(
      [&] { return run_scenario(cfg, *mixed, 23); });
  EXPECT_TRUE(identical(a, b));
  EXPECT_EQ(a.record_digest, b.record_digest);
  EXPECT_EQ(a.engine_digest, b.engine_digest);
}

TEST(Runner, AddingAFaultNeverHelps) {
  const auto cfg = small_chaos_config();
  FaultSchedule schedule;
  InjectedFault straggler;
  straggler.at = minutes(3.0);
  straggler.kind = FaultKind::kStraggler;
  straggler.node = 2;
  straggler.magnitude = 0.1;
  schedule.push_back(straggler);
  const auto base = run_schedule(cfg, "unit", 5, schedule);
  InjectedFault stall;
  stall.at = minutes(12.0);
  stall.kind = FaultKind::kCkptStall;
  stall.duration = minutes(2.0);
  schedule.push_back(stall);
  const auto worse = run_schedule(cfg, "unit", 5, schedule);
  EXPECT_LE(worse.effective_time_ratio, base.effective_time_ratio);
}

// --------------------------------------------------------- oracle/shrink

TEST(Campaign, OracleJudgesRecords) {
  auto cfg = small_chaos_config();
  cfg.min_effective_ratio = 0.2;
  OutcomeRecord record;
  record.effective_time_ratio = 0.8;
  EXPECT_TRUE(evaluate_outcome(cfg, record).pass);
  record.undetected_faults = 1;
  EXPECT_FALSE(evaluate_outcome(cfg, record).pass);
  record.undetected_faults = 0;
  record.effective_time_ratio = 0.1;  // below the configured floor
  EXPECT_FALSE(evaluate_outcome(cfg, record).pass);
  record.effective_time_ratio = 0.8;
  record.nccl_errors = 1;  // an abort with no restart was lost
  record.restarts = 0;
  EXPECT_FALSE(evaluate_outcome(cfg, record).pass);
}

TEST(Campaign, CleanCampaignPasses) {
  const auto cfg = small_chaos_config();
  const auto result = run_campaign(cfg, *find_scenario("clean"), 99, 3);
  EXPECT_EQ(result.passed, 3);
  EXPECT_TRUE(result.failures.empty());
  EXPECT_EQ(result.records.size(), 3u);
}

TEST(Campaign, ParallelFanOutIsBitIdenticalToSerial) {
  // The seed fan-out runs workers over per-seed slots; records, digests,
  // pass counts and failure sets must not depend on the worker count.
  auto cfg = small_chaos_config();
  cfg.parallel_seeds = 1;
  const auto serial = run_campaign(cfg, *find_scenario("mixed"), 4242, 4);
  cfg.parallel_seeds = 4;
  const auto parallel = run_campaign(cfg, *find_scenario("mixed"), 4242, 4);
  EXPECT_EQ(serial.passed, parallel.passed);
  EXPECT_EQ(serial.failures.size(), parallel.failures.size());
  ASSERT_EQ(serial.records.size(), parallel.records.size());
  for (std::size_t i = 0; i < serial.records.size(); ++i) {
    EXPECT_EQ(serial.records[i].seed, parallel.records[i].seed) << i;
    EXPECT_EQ(serial.records[i].record_digest,
              parallel.records[i].record_digest)
        << i;
  }
}

TEST(Campaign, AttachedSinksForceSerialButKeepResults) {
  // With a metrics registry attached the fan-out must drop to one thread
  // (registration order is part of the exported surface) and still count
  // every run exactly once.
  telemetry::MetricsRegistry metrics;
  auto cfg = small_chaos_config();
  cfg.metrics = &metrics;
  cfg.parallel_seeds = 4;  // must be ignored while sinks are attached
  const auto result = run_campaign(cfg, *find_scenario("clean"), 7, 3);
  EXPECT_EQ(result.passed, 3);
  const auto snap = metrics.snapshot();
  const auto* runs = snap.find(
      "chaos_runs_total", {{"outcome", "pass"}, {"scenario", "clean"}});
  ASSERT_NE(runs, nullptr);
  EXPECT_DOUBLE_EQ(runs->value, 3.0);
}

TEST(Campaign, CanaryShrinksToTheHangAlone) {
  auto cfg = small_chaos_config();
  cfg.canary = true;  // heartbeat-timeout detection disabled
  FaultSchedule schedule;
  schedule.push_back(fail_stop_at(minutes(5.0), 3, ft::FaultType::kGpuHang));
  InjectedFault straggler;
  straggler.at = minutes(7.0);
  straggler.kind = FaultKind::kStraggler;
  straggler.node = 5;
  straggler.magnitude = 0.1;
  schedule.push_back(straggler);
  InjectedFault storm;
  storm.at = minutes(15.0);
  storm.kind = FaultKind::kPfcStorm;
  storm.magnitude = 0.5;
  schedule.push_back(storm);
  sort_schedule(schedule);

  const auto record = run_schedule(cfg, "canary", 3, schedule);
  EXPECT_GE(record.undetected_faults, 1);
  ASSERT_FALSE(evaluate_outcome(cfg, record).pass);

  const auto minimal = shrink_schedule(cfg, "canary", 3, schedule);
  ASSERT_EQ(minimal.size(), 1u);
  EXPECT_EQ(minimal[0].kind, FaultKind::kFailStop);
  EXPECT_EQ(minimal[0].fail_type, ft::FaultType::kGpuHang);
}

TEST(Campaign, HealthyDetectorCatchesTheHang) {
  const auto cfg = small_chaos_config();  // canary OFF
  const FaultSchedule schedule{
      fail_stop_at(minutes(5.0), 3, ft::FaultType::kGpuHang)};
  const auto record = run_schedule(cfg, "canary", 3, schedule);
  EXPECT_EQ(record.undetected_faults, 0);
  EXPECT_EQ(record.restarts, 1);
  EXPECT_TRUE(evaluate_outcome(cfg, record).pass);
}

TEST(Campaign, ReproCommandNamesScenarioAndSeed) {
  const auto cmd = repro_command("mixed", 1234567, true);
  EXPECT_EQ(cmd, "chaos_campaign --scenario mixed --seed 1234567 --canary");
  EXPECT_EQ(repro_command("clean", 1, false),
            "chaos_campaign --scenario clean --seed 1");
}

TEST(Campaign, FailureArtifactIsParseableJson) {
  testsupport::TmpDir dir("chaos-artifact");
  CampaignFailure failure;
  failure.seed = 77;
  failure.record = sample_record();
  failure.record.scenario = "unit";
  failure.reason = "synthetic";
  failure.minimized.push_back(
      fail_stop_at(minutes(2.0), 1, ft::FaultType::kGpuHang));
  failure.minimized_record = failure.record;
  failure.repro = repro_command("unit", 77, false);
  const auto path = write_failure_artifact(dir.path(), failure);
  ASSERT_FALSE(path.empty());
  EXPECT_NE(path.find("chaos-unit-seed77.json"), std::string::npos);

  std::ifstream in(path);
  std::stringstream buf;
  buf << in.rdbuf();
  const auto doc = testjson::parse(buf.str());
  ASSERT_TRUE(doc.is_object());
  EXPECT_EQ(doc.at("reason").str, "synthetic");
  EXPECT_EQ(doc.at("repro").str, failure.repro);
  EXPECT_TRUE(doc.at("record").is_object());
  EXPECT_EQ(doc.at("minimized_schedule").size(), 1u);
}

}  // namespace
}  // namespace ms::chaos
