// Cross-module integration tests: the pieces of the stack working together
// the way the production system composes them.
#include <gtest/gtest.h>

#include "diag/heatmap.h"
#include "diag/timeline.h"
#include "dist/data_parallel.h"
#include "engine/job.h"
#include "engine/perturb.h"
#include "ft/ckpt_writer.h"
#include "optim/schedule.h"
#include "optim/trainer.h"
#include "support/builders.h"

namespace ms {
namespace {

// ---------------------- checkpoint/resume with real training state -------

using testsupport::small_tinygpt;

// Train, checkpoint through the two-stage writer at step k, "crash", restore
// weights AND optimizer state, continue — the resumed run must follow the
// uninterrupted run exactly (same data stream).
TEST(Integration, CheckpointRestoreResumesExactly) {
  const auto cfg = small_tinygpt();
  optim::MarkovCorpus corpus(16, 3, 500);
  constexpr int kCrashStep = 10, kTotalSteps = 20;

  auto make_batch = [&](Rng& rng) {
    std::vector<std::vector<int>> batch;
    for (int i = 0; i < 2; ++i) {
      batch.push_back(corpus.sample_sequence(cfg.seq_len + 1, rng));
    }
    return batch;
  };
  auto run_steps = [&](optim::TinyGpt& model, optim::Adam& adam, Rng& data,
                       int from, int to) {
    double last = 0;
    for (int s = from; s < to; ++s) {
      adam.zero_grad();
      for (const auto& seq : make_batch(data)) {
        optim::scale(model.loss(seq), 0.5f).backward();
      }
      adam.step(2e-3f);
      auto params = model.parameters();
      last = 0;  // recompute a deterministic probe loss on fixed data
      (void)params;
      Rng probe(1234);
      last = model.loss(corpus.sample_sequence(cfg.seq_len + 1, probe)).item();
    }
    return last;
  };

  // Reference: uninterrupted.
  Rng init_a(501);
  optim::TinyGpt ref_model(cfg, init_a);
  optim::Adam ref_adam(ref_model.parameters());
  Rng ref_data(502);
  const double ref_final = run_steps(ref_model, ref_adam, ref_data, 0, kTotalSteps);

  // Crash-and-resume: checkpoint at kCrashStep through the real two-stage
  // writer, restore into a FRESH model+optimizer, replay the remaining
  // data stream.
  ft::Snapshot persisted;
  {
    ft::TwoStageCheckpointWriter writer(
        [&](const ft::Snapshot& s) { persisted = s; });
    Rng init_b(501);
    optim::TinyGpt model(cfg, init_b);
    optim::Adam adam(model.parameters());
    Rng data(502);
    run_steps(model, adam, data, 0, kCrashStep);
    // Snapshot = flattened params + optimizer state.
    auto params = model.parameters();
    std::vector<float> state = dist::flatten_params(params, 1);
    const auto opt_state = adam.export_state();
    state.insert(state.end(), opt_state.begin(), opt_state.end());
    ASSERT_TRUE(writer.snapshot(kCrashStep, state));
    writer.flush();
    // data stream position after kCrashStep: save by re-deriving below.
  }
  ASSERT_EQ(persisted.step, kCrashStep);

  // Restore.
  Rng init_c(999);  // deliberately different init — restore must overwrite
  optim::TinyGpt resumed(cfg, init_c);
  optim::Adam resumed_adam(resumed.parameters());
  auto params = resumed.parameters();
  const std::size_t param_count =
      dist::flatten_params(params, 1).size();
  std::vector<float> weights(persisted.state.begin(),
                             persisted.state.begin() +
                                 static_cast<long>(param_count));
  dist::unflatten_into_params(weights, params);
  ASSERT_TRUE(resumed_adam.import_state(std::vector<float>(
      persisted.state.begin() + static_cast<long>(param_count),
      persisted.state.end())));

  // Replay the data stream to the crash point, then continue.
  Rng data(502);
  for (int s = 0; s < kCrashStep; ++s) make_batch(data);
  const double resumed_final =
      run_steps(resumed, resumed_adam, data, kCrashStep, kTotalSteps);

  EXPECT_NEAR(resumed_final, ref_final, 1e-5);
}

// ---------------------- engine spans feed the diagnosis tools ------------

TEST(Integration, EngineSpansDriveTimelineAndBubbleAccounting) {
  engine::JobConfig cfg;
  cfg.model = model::config_175b();
  cfg.model.layers = 48;
  cfg.par = parallel::ParallelConfig{.tp = 8, .pp = 4, .dp = 1, .vpp = 2};
  cfg.global_batch = 8;
  cfg.ops = model::OperatorProfile::megascale();
  cfg.overlap = engine::OverlapOptions::megascale();
  const auto result = engine::simulate_iteration(cfg);

  diag::TimelineTrace trace;
  for (const auto& rec : result.spans) {
    if (rec.tag != "fwd" && rec.tag != "bwd") continue;
    trace.add({.rank = rec.stream / 4, .name = rec.name, .tag = rec.tag,
               .start = rec.start, .end = rec.end});
  }
  // Every stage shows nonzero busy and nonzero bubble inside the iteration.
  for (int stage = 0; stage < 4; ++stage) {
    const TimeNs idle = trace.idle_time(stage, 0, result.iteration_time);
    EXPECT_GT(idle, 0) << "stage " << stage;
    EXPECT_LT(idle, result.iteration_time) << "stage " << stage;
  }
  // The JSON trace exports cleanly.
  EXPECT_GT(trace.chrome_trace_json().size(), 100u);
}

TEST(Integration, StragglerFoldShowsUpInHeatmapAndMfu) {
  engine::JobConfig cfg;
  cfg.model = model::config_175b();
  cfg.model.parallel_block = true;
  cfg.par = parallel::ParallelConfig{.tp = 8, .pp = 8, .dp = 4, .vpp = 6};
  cfg.global_batch = 256;
  cfg.ops = model::OperatorProfile::megascale();
  cfg.overlap = engine::OverlapOptions::megascale();
  const auto base = engine::simulate_iteration(cfg);

  std::vector<double> speeds(32, 1.0);
  speeds[13] = 1.10;
  const auto fold = engine::fold_stragglers(base, cfg, speeds);
  EXPECT_LT(fold.mfu, base.mfu);

  // The same speeds, observed through the CUDA-event monitor, localize the
  // straggler the MFU drop came from.
  diag::PerformanceHeatmap hm;
  for (int m = 0; m < 32; ++m) {
    for (int step = 0; step < 10; ++step) {
      hm.add_sample(m, "fwd", 0.01 * speeds[static_cast<std::size_t>(m)]);
    }
  }
  const auto outliers = hm.outliers(0.05);
  ASSERT_EQ(outliers.size(), 1u);
  EXPECT_EQ(outliers[0], 13);
}

// ---------------------- LR schedule + clip inside a real training loop ---

TEST(Integration, WarmupCosineWithClippingTrains) {
  const auto cfg = small_tinygpt();
  optim::MarkovCorpus corpus(16, 3, 600);
  Rng init(601);
  optim::TinyGpt model(cfg, init);
  optim::Adam adam(model.parameters());
  optim::LrSchedule sched{.base_lr = 5e-3f, .min_lr = 5e-4f,
                          .warmup_steps = 10, .total_steps = 60};
  Rng data(602);
  double first = 0, last = 0;
  for (int step = 0; step < 60; ++step) {
    adam.zero_grad();
    for (int i = 0; i < 2; ++i) {
      auto seq = corpus.sample_sequence(cfg.seq_len + 1, data);
      optim::Tensor loss = optim::scale(model.loss(seq), 0.5f);
      loss.backward();
      if (step == 0 && i == 1) first = loss.item() * 2.0;
      last = loss.item() * 2.0;
    }
    auto params = model.parameters();
    optim::clip_grad_norm(params, 1.0f);
    adam.step(sched.at(step));
  }
  EXPECT_LT(last, first);
}

// ---------------------- DP training + straggler-free determinism ---------

TEST(Integration, DpTrainerDeterministicAcrossRuns) {
  const auto cfg = small_tinygpt();
  optim::MarkovCorpus corpus(16, 3, 700);
  auto run = [&] {
    dist::Zero2DataParallel dp(cfg, 2, 701);
    Rng data(702);
    double loss = 0;
    for (int step = 0; step < 5; ++step) {
      std::vector<std::vector<int>> batch;
      for (int i = 0; i < 4; ++i) {
        batch.push_back(corpus.sample_sequence(cfg.seq_len + 1, data));
      }
      loss = dp.step(batch, 1e-3f);
    }
    return std::make_pair(loss, dp.flat_params(0));
  };
  const auto [loss_a, params_a] = run();
  const auto [loss_b, params_b] = run();
  EXPECT_DOUBLE_EQ(loss_a, loss_b);
  EXPECT_EQ(params_a, params_b);
}

}  // namespace
}  // namespace ms
