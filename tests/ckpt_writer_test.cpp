// Tests for the two-stage checkpoint writer (real threads, §4.4).
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>

#include "ft/ckpt_writer.h"

namespace ms::ft {
namespace {

TEST(CkptWriter, AllSnapshotsReachSinkInOrder) {
  std::vector<std::int64_t> steps;
  std::mutex mu;
  {
    TwoStageCheckpointWriter writer([&](const Snapshot& s) {
      std::lock_guard<std::mutex> lock(mu);
      steps.push_back(s.step);
    });
    for (int i = 0; i < 20; ++i) {
      ASSERT_TRUE(writer.snapshot(i, std::vector<float>(128, static_cast<float>(i))));
    }
    writer.flush();
    EXPECT_EQ(writer.snapshots_persisted(), 20);
  }
  ASSERT_EQ(steps.size(), 20u);
  for (int i = 0; i < 20; ++i) EXPECT_EQ(steps[static_cast<std::size_t>(i)], i);
}

TEST(CkptWriter, SnapshotDataIntact) {
  Snapshot received;
  {
    TwoStageCheckpointWriter writer([&](const Snapshot& s) { received = s; });
    std::vector<float> state{1.5f, -2.5f, 3.25f};
    ASSERT_TRUE(writer.snapshot(7, state));
    writer.flush();
  }
  EXPECT_EQ(received.step, 7);
  EXPECT_EQ(received.state, (std::vector<float>{1.5f, -2.5f, 3.25f}));
}

TEST(CkptWriter, SnapshotIsFastWhileFlushIsSlow) {
  // The point of two-stage checkpointing: the training thread's stall is
  // the staging copy, not the slow sink write.
  TwoStageCheckpointWriter writer(
      [](const Snapshot&) {}, /*max_staged=*/4,
      /*sink_delay_per_mb=*/std::chrono::microseconds(5000));
  std::vector<float> state(256 * 1024, 1.0f);  // 1 MB

  const auto start = std::chrono::steady_clock::now();
  ASSERT_TRUE(writer.snapshot(0, state));
  const auto staged = std::chrono::steady_clock::now();
  writer.flush();
  const auto flushed = std::chrono::steady_clock::now();

  const auto stage_us =
      std::chrono::duration_cast<std::chrono::microseconds>(staged - start);
  const auto flush_us =
      std::chrono::duration_cast<std::chrono::microseconds>(flushed - staged);
  EXPECT_LT(stage_us.count() * 2, flush_us.count());
}

TEST(CkptWriter, BackpressureWhenFlusherBehind) {
  std::atomic<int> persisted{0};
  TwoStageCheckpointWriter writer(
      [&](const Snapshot&) { persisted.fetch_add(1); }, /*max_staged=*/1,
      std::chrono::microseconds(20000));
  std::vector<float> state(64, 0.0f);
  const auto start = std::chrono::steady_clock::now();
  ASSERT_TRUE(writer.snapshot(0, state));  // staged instantly
  ASSERT_TRUE(writer.snapshot(1, state));  // must wait for slot
  const auto blocked_us = std::chrono::duration_cast<std::chrono::microseconds>(
      std::chrono::steady_clock::now() - start);
  // The second snapshot had to wait roughly one sink write.
  EXPECT_GT(blocked_us.count(), 5000);
  writer.flush();
  EXPECT_EQ(persisted.load(), 2);
}

TEST(CkptWriter, SnapshotAfterCloseFails) {
  TwoStageCheckpointWriter writer([](const Snapshot&) {});
  writer.close();
  EXPECT_FALSE(writer.snapshot(0, {1.0f}));
}

TEST(CkptWriter, CloseFlushesOutstanding) {
  std::atomic<int> persisted{0};
  {
    TwoStageCheckpointWriter writer(
        [&](const Snapshot&) { persisted.fetch_add(1); }, 8,
        std::chrono::microseconds(1000));
    for (int i = 0; i < 5; ++i) {
      ASSERT_TRUE(writer.snapshot(i, std::vector<float>(64, 0.0f)));
    }
    writer.close();  // must drain before returning
  }
  EXPECT_EQ(persisted.load(), 5);
}

}  // namespace
}  // namespace ms::ft
