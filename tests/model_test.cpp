#include <gtest/gtest.h>

#include "model/ops.h"
#include "model/transformer.h"

namespace ms::model {
namespace {

// ------------------------------------------------------------ parameters

TEST(Model, Table1Presets175B) {
  const auto cfg = config_175b();
  EXPECT_EQ(cfg.layers, 96);
  EXPECT_EQ(cfg.hidden, 12288);
  EXPECT_EQ(cfg.heads, 128);
  // ~175 billion parameters.
  EXPECT_NEAR(params_count(cfg) / 1e9, 175.0, 5.0);
}

TEST(Model, Table1Presets530B) {
  const auto cfg = config_530b();
  EXPECT_EQ(cfg.layers, 105);
  EXPECT_EQ(cfg.hidden, 20480);
  EXPECT_EQ(cfg.heads, 160);
  EXPECT_NEAR(params_count(cfg) / 1e9, 530.0, 10.0);
}

TEST(Model, Preset13B) {
  EXPECT_NEAR(params_count(config_13b()) / 1e9, 13.0, 1.0);
}

// ----------------------------------------------------------------- flops

TEST(Model, TrainFlopsApproximatelySixTimesParams) {
  // The classic rule: training FLOPs/token ~ 6 * params (dense part).
  const auto cfg = config_175b();
  const double ratio = train_flops_per_token(cfg) / params_count(cfg);
  EXPECT_NEAR(ratio, 6.0, 0.4);
}

TEST(Model, SlidingWindowReducesAttentionFlops) {
  auto cfg = config_175b();
  const auto full = forward_flops_per_token(cfg);
  cfg.attention = AttentionKind::kSlidingWindow;
  cfg.window = 512;
  const auto swa = forward_flops_per_token(cfg);
  EXPECT_LT(swa.attention, full.attention);
  EXPECT_DOUBLE_EQ(swa.dense, full.dense);  // dense part unchanged
  // O(s*w) vs O(s*s/2): causal span 512 - 512^2/4096 = 448 vs 1024.
  EXPECT_NEAR(swa.attention / full.attention, 448.0 / 1024.0, 0.01);
}

TEST(Model, ReferenceFlopsIgnoreSwa) {
  auto cfg = config_175b();
  const Flops reference_full = reference_train_flops_per_token(cfg);
  cfg.attention = AttentionKind::kSlidingWindow;
  cfg.window = 256;
  EXPECT_DOUBLE_EQ(reference_train_flops_per_token(cfg), reference_full);
  EXPECT_LT(train_flops_per_token(cfg), reference_full);
}

TEST(Model, MfuSanityAgainstPaperTable2) {
  // Paper Table 2, MegaScale @ 12288 GPUs: 1984k tokens/s at 55.2% MFU on
  // 312-TFLOPS GPUs. Our FLOPs accounting should land in that ballpark.
  const auto cfg = config_175b();
  const double m = mfu(cfg, 1984e3, 12288, tera(312.0));
  EXPECT_NEAR(m, 0.552, 0.05);
}

TEST(Model, MfuScalesLinearlyWithThroughput) {
  const auto cfg = config_175b();
  const double m1 = mfu(cfg, 100e3, 1024, tera(312.0));
  const double m2 = mfu(cfg, 200e3, 1024, tera(312.0));
  EXPECT_NEAR(m2, 2.0 * m1, 1e-12);
}

TEST(Model, ActivationBytesBf16) {
  EXPECT_EQ(activation_bytes_per_token(config_175b()), 12288 * 2);
}

TEST(Model, AttentionSpanCausalHalf) {
  auto cfg = config_175b();
  EXPECT_DOUBLE_EQ(cfg.attention_span(), 1024.0);
  cfg.attention = AttentionKind::kSlidingWindow;
  cfg.window = 300;
  // Causal window: position t attends min(w, t) => mean w - w^2/(2s).
  EXPECT_DOUBLE_EQ(cfg.attention_span(), 300.0 - 300.0 * 300.0 / 4096.0);
  // A window as long as the sequence degenerates to full attention.
  cfg.window = 2048;
  EXPECT_DOUBLE_EQ(cfg.attention_span(), 1024.0);
}

// -------------------------------------------------------------- op costs

collective::GpuSpec a100() { return collective::GpuSpec{}; }

TEST(Ops, GemmTimeMatchesArithmetic) {
  const auto cfg = config_175b();
  OpCostModel m(cfg, OperatorProfile::megatron_baseline(), a100());
  // One layer, 2048 tokens, tp=8.
  const double h = cfg.hidden, f = cfg.ffn_hidden;
  const double flops = 2.0 * (4 * h * h + 2 * h * f) * 2048 / 8;
  const double expected_s = flops / (tera(312.0) * 0.70);
  EXPECT_NEAR(to_seconds(m.fwd_dense(2048, 8)), expected_s, 2e-5);
}

TEST(Ops, FlashAttention2Faster) {
  const auto cfg = config_175b();
  OpCostModel naive(cfg, OperatorProfile::megatron_baseline(), a100());
  OpCostModel flash(cfg, OperatorProfile::megascale(), a100());
  EXPECT_LT(flash.fwd_attention(2048, 8), naive.fwd_attention(2048, 8));
}

TEST(Ops, FusionReducesElementwiseTime) {
  const auto cfg = config_175b();
  OpCostModel unfused(cfg, OperatorProfile::megatron_baseline(), a100());
  OpCostModel fused(cfg, OperatorProfile::megascale(), a100());
  EXPECT_LT(fused.fwd_elementwise(2048), unfused.fwd_elementwise(2048));
}

TEST(Ops, ParallelBlockReducesElementwiseTime) {
  auto serial_cfg = config_175b();
  auto ptb_cfg = serial_cfg;
  ptb_cfg.parallel_block = true;
  const auto profile = OperatorProfile::megascale();
  OpCostModel serial(serial_cfg, profile, a100());
  OpCostModel ptb(ptb_cfg, profile, a100());
  EXPECT_LT(ptb.fwd_elementwise(2048), serial.fwd_elementwise(2048));
}

TEST(Ops, BackwardTwiceForwardGemms) {
  const auto cfg = config_175b();
  OpCostModel m(cfg, OperatorProfile::megascale(), a100());
  const TimeNs fwd = m.fwd_dense(2048, 8) + m.fwd_attention(2048, 8);
  const TimeNs bwd = m.bwd_layer(2048, 2048, 8) - m.fwd_elementwise(2048);
  EXPECT_EQ(bwd, 2 * fwd);
}

TEST(Ops, SwaSpeedsUpAttention) {
  auto cfg = config_175b();
  OpCostModel full(cfg, OperatorProfile::megascale(), a100());
  cfg.attention = AttentionKind::kSlidingWindow;
  cfg.window = 512;
  OpCostModel swa(cfg, OperatorProfile::megascale(), a100());
  EXPECT_LT(swa.fwd_attention(2048, 8), full.fwd_attention(2048, 8));
}

TEST(Ops, TensorParallelDividesGemmTime) {
  const auto cfg = config_175b();
  OpCostModel m(cfg, OperatorProfile::megascale(), a100());
  const double t1 = to_seconds(m.fwd_dense(2048, 1));
  const double t8 = to_seconds(m.fwd_dense(2048, 8));
  // Modulo the fixed launch overhead, tp=8 is 8x faster.
  EXPECT_NEAR(t1 / t8, 8.0, 0.2);
}

TEST(Ops, OptimizerStepScalesWithParams) {
  OpCostModel m(config_175b(), OperatorProfile::megascale(), a100());
  EXPECT_GT(m.optimizer_step(2e9), m.optimizer_step(1e9));
}

TEST(Ops, LogitsTimePositive) {
  OpCostModel m(config_175b(), OperatorProfile::megascale(), a100());
  EXPECT_GT(m.fwd_logits(2048, 8), 0);
}

}  // namespace
}  // namespace ms::model
