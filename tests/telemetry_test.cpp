// Unified telemetry subsystem: registry semantics, tracer/scoped spans,
// the three exporters, the training dashboard, and the metric series the
// instrumented layers (engine, net, data, ft) actually emit.
#include <gtest/gtest.h>

#include <set>
#include <string>
#include <thread>
#include <vector>

#include "data/pipeline.h"
#include "engine/job.h"
#include "ft/workflow.h"
#include "net/ccsim.h"
#include "sim/engine.h"
#include "telemetry/dashboard.h"
#include "telemetry/exporters.h"
#include "telemetry/metrics.h"
#include "telemetry/trace.h"
#include "support/json.h"

namespace ms::telemetry {
namespace {

// ------------------------------------------------------------- registry

TEST(Metrics, CounterAccumulates) {
  MetricsRegistry reg;
  auto& c = reg.counter("events_total");
  c.add();
  c.add(2.5);
  EXPECT_DOUBLE_EQ(c.value(), 3.5);
  // Same (name, labels) resolves to the same cell.
  reg.counter("events_total").add();
  EXPECT_DOUBLE_EQ(c.value(), 4.5);
  EXPECT_EQ(reg.series_count(), 1u);
}

TEST(Metrics, CounterIsThreadSafe) {
  MetricsRegistry reg;
  auto& c = reg.counter("contended_total");
  std::vector<std::thread> workers;
  for (int w = 0; w < 4; ++w) {
    workers.emplace_back([&] {
      for (int i = 0; i < 10000; ++i) c.add();
    });
  }
  for (auto& t : workers) t.join();
  EXPECT_DOUBLE_EQ(c.value(), 40000.0);
}

TEST(Metrics, GaugeHoldsLastValue) {
  MetricsRegistry reg;
  auto& g = reg.gauge("mfu");
  g.set(0.55);
  g.set(0.62);
  EXPECT_DOUBLE_EQ(g.value(), 0.62);
}

TEST(Metrics, LabeledSeriesAreDistinct) {
  MetricsRegistry reg;
  reg.counter("bytes_total", {{"op", "allgather"}, {"rank", "3"}}).add(10);
  reg.counter("bytes_total", {{"op", "allreduce"}, {"rank", "3"}}).add(20);
  EXPECT_EQ(reg.series_count(), 2u);
  // Label order is canonicalized: {rank,op} is the same series as {op,rank}.
  reg.counter("bytes_total", {{"rank", "3"}, {"op", "allgather"}}).add(5);
  EXPECT_EQ(reg.series_count(), 2u);
  const auto snap = reg.snapshot();
  const auto* s =
      snap.find("bytes_total", {{"op", "allgather"}, {"rank", "3"}});
  ASSERT_NE(s, nullptr);
  EXPECT_DOUBLE_EQ(s->value, 15.0);
}

TEST(Metrics, EncodeLabelsCanonical) {
  EXPECT_EQ(encode_labels({}), "");
  EXPECT_EQ(encode_labels({{"b", "2"}, {"a", "1"}}), "{a=\"1\",b=\"2\"}");
}

TEST(Metrics, HistogramMergesAcrossInstances) {
  // Per-rank histograms share the fixed bucket layout, so an aggregator
  // can merge them element-wise (the §5 per-machine -> fleet rollup).
  MetricsRegistry reg;
  auto& rank0 = reg.histogram("latency_seconds", {{"rank", "0"}});
  auto& rank1 = reg.histogram("latency_seconds", {{"rank", "1"}});
  for (int i = 1; i <= 50; ++i) rank0.observe(i * 1e-3);
  for (int i = 51; i <= 100; ++i) rank1.observe(i * 1e-3);
  HdrHistogram merged = rank0.snapshot();
  merged.merge(rank1.snapshot());
  EXPECT_EQ(merged.total(), 100u);
  EXPECT_NEAR(merged.mean(), 0.0505, 1e-6);
  EXPECT_NEAR(merged.p50(), 0.050, 0.005);
  EXPECT_NEAR(merged.quantile(1.0), 0.100, 1e-9);
}

TEST(Metrics, SnapshotThenResetGivesWindows) {
  MetricsRegistry reg;
  auto& c = reg.counter("steps_total");
  auto& h = reg.histogram("step_seconds");
  c.add(3);
  h.observe(0.5);
  auto snap = reg.snapshot();
  ASSERT_EQ(snap.samples.size(), 2u);
  EXPECT_DOUBLE_EQ(snap.find("steps_total")->value, 3.0);
  EXPECT_EQ(snap.find("step_seconds")->hist.total(), 1u);

  reg.reset();
  // Registrations and handles survive; values are zeroed.
  EXPECT_EQ(reg.series_count(), 2u);
  EXPECT_DOUBLE_EQ(c.value(), 0.0);
  c.add();
  EXPECT_DOUBLE_EQ(reg.snapshot().find("steps_total")->value, 1.0);
  EXPECT_EQ(reg.snapshot().find("step_seconds")->hist.total(), 0u);
}

// --------------------------------------------------------------- tracer

TEST(Tracer, RecordsSpansInOrder) {
  Tracer tracer;
  tracer.record(0, "fwd-0", "fwd", 0, 10);
  tracer.record(1, "bwd-0", "bwd", 10, 30);
  EXPECT_EQ(tracer.size(), 2u);
  const auto spans = tracer.spans();
  EXPECT_EQ(spans[0].name, "fwd-0");
  EXPECT_EQ(spans[1].rank, 1);
}

TEST(Tracer, ScopedSpanBracketsClock) {
  Tracer tracer;
  TimeNs fake_now = 100;
  tracer.set_clock([&] { return fake_now; });
  {
    ScopedSpan span(tracer, 2, "checkpoint", "io");
    fake_now = 250;
  }
  ASSERT_EQ(tracer.size(), 1u);
  const auto s = tracer.spans()[0];
  EXPECT_EQ(s.rank, 2);
  EXPECT_EQ(s.start, 100);
  EXPECT_EQ(s.end, 250);
  EXPECT_EQ(s.tag, "io");
}

TEST(Tracer, AttachesToSimEngineClock) {
  sim::Engine engine;
  Tracer tracer;
  tracer.attach(engine);
  auto span = std::make_unique<ScopedSpan>(tracer, 0, "phase", "work");
  engine.at(seconds(1.0), [&] { span->close(); });
  engine.run();
  ASSERT_EQ(tracer.size(), 1u);
  EXPECT_EQ(tracer.spans()[0].start, 0);
  EXPECT_EQ(tracer.spans()[0].end, seconds(1.0));
}

TEST(Tracer, TimelineFilterKeepsMatchingTags) {
  Tracer tracer;
  tracer.record(0, "f", "fwd", 0, 10);
  tracer.record(0, "d", "dp-comm", 10, 20);
  tracer.record(1, "b", "bwd", 0, 15);
  const auto all = tracer.timeline();
  EXPECT_EQ(all.rank_spans(0).size(), 2u);
  const auto compute = tracer.timeline(
      [](const diag::TraceSpan& s) { return s.tag != "dp-comm"; });
  EXPECT_EQ(compute.rank_spans(0).size(), 1u);
  EXPECT_EQ(compute.rank_spans(1).size(), 1u);
}

// ------------------------------------------------------------ exporters

TEST(Exporters, PrometheusTextWellFormed) {
  MetricsRegistry reg;
  reg.counter("requests_total", {{"op", "allgather"}}).add(7);
  reg.gauge("queue_depth").set(123.5);
  auto& h = reg.histogram("latency_seconds");
  h.observe(0.001);
  h.observe(0.002);
  h.observe(5.0);
  const std::string text = prometheus_text(reg.snapshot());

  EXPECT_NE(text.find("# TYPE requests_total counter"), std::string::npos);
  EXPECT_NE(text.find("requests_total{op=\"allgather\"} 7"),
            std::string::npos);
  EXPECT_NE(text.find("# TYPE queue_depth gauge"), std::string::npos);
  EXPECT_NE(text.find("queue_depth 123.5"), std::string::npos);
  EXPECT_NE(text.find("# TYPE latency_seconds histogram"), std::string::npos);
  // Histogram contract: cumulative buckets ending in +Inf, plus _sum/_count.
  EXPECT_NE(text.find("latency_seconds_bucket{le=\"+Inf\"} 3"),
            std::string::npos);
  EXPECT_NE(text.find("latency_seconds_count 3"), std::string::npos);
  EXPECT_NE(text.find("latency_seconds_sum"), std::string::npos);

  // Cumulative bucket counts never decrease.
  std::uint64_t prev = 0;
  std::size_t pos = 0;
  int buckets = 0;
  while ((pos = text.find("latency_seconds_bucket", pos)) !=
         std::string::npos) {
    const std::size_t space = text.find(' ', pos);
    const std::uint64_t v = std::stoull(text.substr(space + 1));
    EXPECT_GE(v, prev);
    prev = v;
    ++buckets;
    pos = space;
  }
  EXPECT_GE(buckets, 3);
}

TEST(Exporters, PrometheusSanitizesNames) {
  MetricsRegistry reg;
  reg.counter("weird.metric-name", {{"k", "va\"lue\n"}}).add();
  const std::string text = prometheus_text(reg.snapshot());
  EXPECT_NE(text.find("weird_metric_name"), std::string::npos);
  EXPECT_NE(text.find("\\\""), std::string::npos);  // escaped quote
  EXPECT_NE(text.find("\\n"), std::string::npos);   // escaped newline
}

TEST(Exporters, JsonlEveryLineParses) {
  MetricsRegistry reg;
  reg.counter("a_total", {{"op", "x"}}).add(2);
  reg.gauge("b").set(1.5);
  reg.histogram("c_seconds").observe(0.25);
  Tracer tracer;
  tracer.record(0, "fwd \"quoted\"", "fwd", 0, 1000);

  const std::string log =
      jsonl_metrics(reg.snapshot()) + jsonl_spans(tracer.spans());
  std::size_t lines = 0;
  std::size_t pos = 0;
  std::set<std::string> types;
  while (pos < log.size()) {
    std::size_t eol = log.find('\n', pos);
    if (eol == std::string::npos) eol = log.size();
    const std::string line = log.substr(pos, eol - pos);
    pos = eol + 1;
    if (line.empty()) continue;
    ++lines;
    const auto v = testjson::parse(line);
    ASSERT_TRUE(v.is_object()) << line;
    types.insert(v.at("type").str);
  }
  EXPECT_EQ(lines, 4u);
  EXPECT_EQ(types, (std::set<std::string>{"counter", "gauge", "histogram",
                                          "span"}));
}

TEST(Exporters, ChromeTraceParsesAndMatchesSpans) {
  Tracer tracer;
  tracer.record(0, "fwd-1", "fwd", microseconds(1.0), microseconds(3.0));
  tracer.record(1, "bwd-1", "bwd", microseconds(3.0), microseconds(7.0));
  const auto v = testjson::parse(chrome_trace(tracer));
  ASSERT_TRUE(v.is_object());
  const auto& events = v.at("traceEvents");
  ASSERT_TRUE(events.is_array());
  ASSERT_EQ(events.size(), 2u);
  for (std::size_t i = 0; i < events.size(); ++i) {
    EXPECT_EQ(events[i].at("ph").str, "X");
    EXPECT_TRUE(events[i].has("ts"));
    EXPECT_TRUE(events[i].has("dur"));
  }
}

// ------------------------------------------- instrumented layer metrics

engine::JobConfig small_job() {
  engine::JobConfig cfg;
  cfg.model = model::config_175b();
  cfg.model.layers = 16;
  cfg.par = parallel::ParallelConfig{.tp = 8, .pp = 4, .dp = 1, .vpp = 2};
  cfg.global_batch = 8;
  cfg.ops = model::OperatorProfile::megascale();
  cfg.overlap = engine::OverlapOptions::megascale();
  return cfg;
}

TEST(Instrumentation, EngineEmitsSpansAndMetrics) {
  MetricsRegistry reg;
  Tracer tracer;
  auto cfg = small_job();
  cfg.metrics = &reg;
  cfg.tracer = &tracer;
  const auto iter = engine::simulate_iteration(cfg);

  EXPECT_EQ(tracer.size(), iter.spans.size());
  const auto snap = reg.snapshot();
  EXPECT_DOUBLE_EQ(snap.find("engine_iterations_total")->value, 1.0);
  EXPECT_NEAR(snap.find("engine_mfu")->value, iter.mfu, 1e-12);
  const auto* fwd = snap.find("engine_ops_total", {{"op", "fwd"}});
  ASSERT_NE(fwd, nullptr);
  EXPECT_GT(fwd->value, 0.0);
  // Collectives triggered by the iteration record latency histograms.
  bool saw_collective = false;
  for (const auto& s : snap.samples) {
    if (s.name == "collective_latency_seconds") saw_collective = true;
  }
  EXPECT_TRUE(saw_collective);
}

TEST(Instrumentation, CcSimRecordsQueueAndPfc) {
  MetricsRegistry reg;
  net::CcSimParams p;
  p.senders = 8;
  p.duration_s = 0.01;
  p.metrics = &reg;
  const auto result =
      net::run_cc_sim(p, [] { return std::make_unique<net::Dcqcn>(); });
  const auto snap = reg.snapshot();
  const Labels algo{{"algo", result.algorithm}};
  ASSERT_NE(snap.find("ccsim_queue_depth_bytes", algo), nullptr);
  const auto* util = snap.find("ccsim_utilization", algo);
  ASSERT_NE(util, nullptr);
  EXPECT_NEAR(util->value, result.utilization, 1e-12);
}

TEST(Instrumentation, DataPipelineRecordsComponents) {
  MetricsRegistry reg;
  data::DataPipelineConfig cfg;
  const auto cost = data::data_step_cost(cfg, &reg);
  const auto snap = reg.snapshot();
  const Labels mode{{"mode", "redundant"}};
  EXPECT_DOUBLE_EQ(snap.find("data_steps_total", mode)->value, 1.0);
  EXPECT_NEAR(snap.find("data_exposed_seconds", mode)->hist.sum(),
              to_seconds(cost.exposed), 1e-9);
}

TEST(Instrumentation, WorkflowCountsIncidentsAndHealth) {
  MetricsRegistry reg;
  ft::WorkflowConfig cfg;
  cfg.nodes = 16;
  cfg.metrics = &reg;
  const TimeNs duration = days(2.0);
  Rng fault_rng(21);
  auto faults = ft::draw_fault_schedule(duration, hours(6.0), cfg.nodes,
                                        ft::default_fault_mix(), fault_rng);
  Rng rng(22);
  const auto report = ft::run_robust_training(cfg, duration, faults, rng);
  const auto snap = reg.snapshot();
  EXPECT_DOUBLE_EQ(snap.find("ft_restarts_total")->value,
                   static_cast<double>(report.restarts));
  EXPECT_NEAR(snap.find("ft_effective_time_ratio")->value,
              report.effective_time_ratio, 1e-12);
  if (report.restarts > 0) {
    EXPECT_EQ(snap.find("ft_detect_latency_seconds")->hist.total(),
              static_cast<std::uint64_t>(report.restarts));
    EXPECT_GT(snap.find("ft_heartbeats_total")->value, 0.0);
  }
}

// ------------------------------------------------------------ dashboard

TEST(Dashboard, RollsStepsIntoReport) {
  MetricsRegistry reg;
  TrainingDashboard dash(&reg);
  auto cfg = small_job();
  const auto iter = engine::simulate_iteration(cfg);
  const auto& step = dash.record_step(cfg, iter);

  EXPECT_EQ(step.step, 0);
  EXPECT_EQ(step.iteration_time, iter.iteration_time);
  EXPECT_DOUBLE_EQ(step.mfu, iter.mfu);
  EXPECT_GT(step.comm_total, 0);
  EXPECT_EQ(step.comm_total, step.comm_exposed + step.comm_overlapped);
  EXPECT_GE(step.bubble_fraction, 0.0);
  EXPECT_LE(step.bubble_fraction, 1.0);
  EXPECT_DOUBLE_EQ(dash.mean_mfu(), iter.mfu);

  // Mirrored into the registry for the exporters.
  const auto snap = reg.snapshot();
  EXPECT_NEAR(snap.find("dashboard_mfu")->value, iter.mfu, 1e-12);
  EXPECT_EQ(snap.find("dashboard_step_seconds")->hist.total(), 1u);

  const std::string report = dash.report();
  EXPECT_NE(report.find("MFU"), std::string::npos);
  EXPECT_NE(report.find("bubble"), std::string::npos);
}

TEST(Dashboard, FindsStragglersFromMachineSamples) {
  TrainingDashboard dash;
  for (int machine = 0; machine < 16; ++machine) {
    const double factor = machine == 11 ? 1.10 : 1.0;
    for (int step = 0; step < 10; ++step) {
      dash.add_machine_sample(machine, "fwd", 0.010 * factor);
    }
  }
  const auto stragglers = dash.straggler_machines(0.05);
  ASSERT_EQ(stragglers.size(), 1u);
  EXPECT_EQ(stragglers[0], 11);
  EXPECT_NEAR(dash.worst_straggler_delta(), 0.10, 0.02);
}

TEST(Dashboard, HealthSectionFromRunReport) {
  TrainingDashboard dash;
  ft::RunReport report;
  report.duration = days(7.0);
  report.restarts = 3;
  report.auto_detected_fraction = 0.9;
  report.effective_time_ratio = 0.93;
  dash.record_health(report);
  const std::string text = dash.report();
  EXPECT_NE(text.find("restarts"), std::string::npos);
  EXPECT_NE(text.find("93."), std::string::npos);
}

TEST(Tracer, WarnsOnceOnFrozenClockScopedSpans) {
  Tracer tracer;
  testing::internal::CaptureStderr();
  { ScopedSpan span(tracer, 0, "fwd", "fwd"); }
  { ScopedSpan span(tracer, 0, "bwd", "bwd"); }
  const std::string log = testing::internal::GetCapturedStderr();
  EXPECT_NE(log.find("frozen-at-0 clock"), std::string::npos);
  // Once per tracer, not per span.
  EXPECT_EQ(log.find("frozen-at-0 clock"),
            log.rfind("frozen-at-0 clock"));
  EXPECT_EQ(tracer.size(), 2u);
}

TEST(Tracer, NoWarningWithClockOrExplicitTimestamps) {
  testing::internal::CaptureStderr();
  Tracer clocked;
  TimeNs now = 0;
  clocked.set_clock([&now] { return now; });
  { ScopedSpan span(clocked, 0, "fwd", "fwd"); }

  // Explicit-timestamp records never involve the clock — a legitimate
  // zero-length span at t=0 (fully-hidden async data load) must not warn.
  Tracer manual;
  manual.record(0, "data-load", "data", 0, 0);
  EXPECT_EQ(testing::internal::GetCapturedStderr().find("frozen-at-0"),
            std::string::npos);
}

TEST(Dashboard, DiagnosisSectionAndBlameMetrics) {
  MetricsRegistry reg;
  TrainingDashboard dash(&reg);

  diag::StepDiagnosis d;
  d.makespan = seconds(12.0);
  d.blame.push_back({diag::SegmentKind::kStragglerWait, 3, "", seconds(4.0),
                     4.0 / 12.0});
  d.blame.push_back({diag::SegmentKind::kSlowLink, 2, "2->3",
                     milliseconds(50.0), 0.004});
  dash.record_diagnosis(d);

  const std::string text = dash.report();
  EXPECT_NE(text.find("critical path"), std::string::npos);
  EXPECT_NE(text.find("straggler-wait"), std::string::npos);
  EXPECT_NE(text.find("rank 3"), std::string::npos);

  const auto snap = reg.snapshot();
  const auto* path = snap.find("diag_critical_path_seconds");
  ASSERT_NE(path, nullptr);
  EXPECT_DOUBLE_EQ(path->value, 12.0);
  const auto* straggler = snap.find(
      "diag_blame_total", {{"cause", "straggler-wait"}, {"rank", "3"}});
  ASSERT_NE(straggler, nullptr);
  EXPECT_DOUBLE_EQ(straggler->value, 4.0);
  const auto* link = snap.find(
      "diag_blame_total",
      {{"cause", "slow-link"}, {"link", "2->3"}, {"rank", "2"}});
  ASSERT_NE(link, nullptr);
  EXPECT_DOUBLE_EQ(link->value, 0.05);
}

// ------------------------------------------- histogram overflow alarm

TEST(Metrics, SketchOverflowCounterSynthesized) {
  MetricsRegistry reg;
  auto& h = reg.histogram("step_seconds", {{"job", "a"}});
  h.observe(12.0);           // in range
  h.observe(5.0e12);         // beyond HdrHistogram::kRangeHi
  h.observe(7.0e12);
  const auto snap = reg.snapshot();
  double overflow = -1;
  for (const auto& s : snap.samples) {
    if (s.name != "telemetry_sketch_overflow_total") continue;
    overflow = s.value;
    EXPECT_EQ(s.kind, MetricKind::kCounter);
    // Labeled with the offending series so the alarm names its source.
    bool found_metric_label = false;
    for (const auto& [k, v] : s.labels) {
      if (k == "metric") {
        EXPECT_EQ(v, "step_seconds");
        found_metric_label = true;
      }
    }
    EXPECT_TRUE(found_metric_label);
  }
  EXPECT_DOUBLE_EQ(overflow, 2.0);
}

TEST(Metrics, NoOverflowCounterWhenInRange) {
  MetricsRegistry reg;
  reg.histogram("step_seconds").observe(12.0);
  for (const auto& s : reg.snapshot().samples) {
    EXPECT_NE(s.name, "telemetry_sketch_overflow_total");
  }
}

TEST(Dashboard, SurfacesSketchOverflow) {
  MetricsRegistry reg;
  TrainingDashboard dash(&reg);
  reg.histogram("step_seconds").observe(1.0);
  EXPECT_EQ(dash.report().find("sketch overflow"), std::string::npos);
  reg.histogram("step_seconds").observe(5.0e12);  // mis-scaled sample
  EXPECT_NE(dash.report().find("sketch overflow"), std::string::npos);
}

}  // namespace
}  // namespace ms::telemetry
