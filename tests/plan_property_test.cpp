// Property suite for the plan auto-tuner: the analytic stage must be an
// admissible pruner, the memory constraint must be sound, and the whole
// pipeline must be bit-deterministic.
//
// Admissibility is the load-bearing property: the planner only DES-
// validates the analytic top-K, so an inadmissible analytic ranking would
// silently return a non-optimal "winner". On clusters small enough to
// simulate the ENTIRE feasible space we therefore compare the planner's
// answer against exhaustive ground truth across randomized specs.
#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "core/rng.h"
#include "engine/job.h"
#include "model/transformer.h"
#include "plan/analytic.h"
#include "plan/planner.h"
#include "plan/space.h"

namespace ms {
namespace {

// A 16-layer 13B-shaped model: enough structure that TP/PP/DP trades are
// non-trivial, small enough that exhaustive DES over the space stays in
// tier-1 time.
model::ModelConfig small_model() {
  model::ModelConfig cfg = model::config_13b();
  cfg.name = "13B-16L";
  cfg.layers = 16;
  return cfg;
}

// Randomized small planning problem. Seeded through the repo Rng so the
// sampled specs are reproducible across runs and platforms.
plan::PlanSpec random_spec(std::uint64_t seed) {
  Rng rng(seed);
  plan::PlanSpec spec;
  spec.model = small_model();
  const int gpu_choices[] = {16, 32, 64};
  const int batch_choices[] = {32, 64};
  spec.gpus = gpu_choices[rng.uniform_int(0, 2)];
  spec.global_batch = batch_choices[rng.uniform_int(0, 1)];
  spec.network_efficiency = 0.6 + 0.3 * rng.uniform();
  if (rng.uniform_int(0, 1) == 0) {
    spec.ops = model::OperatorProfile::megatron_baseline();
    spec.overlap = engine::OverlapOptions::megatron_lm();
  }
  spec.max_vpp = 4;  // caps the space so exhaustive DES stays cheap
  return spec;
}

// Exhaustive ground truth: simulate EVERY feasible candidate.
struct Exhaustive {
  plan::PlanCandidate best;
  TimeNs best_step = 0;
  int feasible = 0;
};

Exhaustive exhaustive_optimum(const plan::PlanSpec& spec) {
  Exhaustive out;
  for (const auto& cand : plan::enumerate_space(spec)) {
    if (!plan::feasible(spec, cand)) continue;
    const auto result = engine::simulate_iteration(plan::job_config(spec, cand));
    ++out.feasible;
    if (out.best_step == 0 || result.iteration_time < out.best_step) {
      out.best_step = result.iteration_time;
      out.best = cand;
    }
  }
  return out;
}

// The analytic top-K must contain the true DES optimum — the planner's
// winner ties the exhaustive search exactly on every sampled spec.
TEST(PlanProperty, PrunerIsAdmissibleOnExhaustiveSpaces) {
  for (std::uint64_t seed = 1; seed <= 6; ++seed) {
    const plan::PlanSpec spec = random_spec(seed);
    const Exhaustive truth = exhaustive_optimum(spec);
    ASSERT_GT(truth.feasible, 0) << "seed " << seed;

    plan::PlannerOptions opt;
    opt.top_k = 8;
    const plan::PlanReport report = plan::search(spec, opt);
    ASSERT_FALSE(report.plans.empty()) << "seed " << seed;
    EXPECT_EQ(report.feasible(), truth.feasible) << "seed " << seed;

    const auto& winner = report.best();
    ASSERT_TRUE(winner.simulated) << "seed " << seed;
    EXPECT_EQ(winner.sim_step, truth.best_step)
        << "seed " << seed << ": planner picked "
        << plan::candidate_name(winner.cand) << ", exhaustive optimum is "
        << plan::candidate_name(truth.best) << " (analytic top-"
        << opt.top_k << " missed it)";
  }
}

// Memory soundness: feasible() is exactly "peak working set fits the HBM";
// search() accounts every enumerated candidate to one side or the other.
TEST(PlanProperty, MemoryConstraintIsSound) {
  for (std::uint64_t seed = 1; seed <= 4; ++seed) {
    const plan::PlanSpec spec = random_spec(seed);
    const auto space = plan::enumerate_space(spec);
    int infeasible = 0;
    for (const auto& cand : space) {
      const double total = plan::candidate_memory(spec, cand).total();
      EXPECT_EQ(plan::feasible(spec, cand),
                total <= spec.memory.gpu_hbm_bytes)
          << plan::candidate_name(cand);
      infeasible += plan::feasible(spec, cand) ? 0 : 1;
    }
    const plan::PlanReport report = plan::search(spec);
    EXPECT_EQ(report.enumerated, static_cast<int>(space.size()));
    EXPECT_EQ(report.memory_rejected, infeasible);
  }
}

// Every enumerated candidate is engine-legal: the planner can hand any of
// them to the DES unchecked.
TEST(PlanProperty, EnumeratedCandidatesAllPassEngineValidation) {
  for (std::uint64_t seed = 1; seed <= 4; ++seed) {
    const plan::PlanSpec spec = random_spec(seed);
    int checked = 0;
    for (const auto& cand : plan::enumerate_space(spec)) {
      const std::string problem =
          engine::validate(plan::job_config(spec, cand));
      EXPECT_EQ(problem, "") << plan::candidate_name(cand);
      ++checked;
    }
    EXPECT_GT(checked, 0) << "seed " << seed;
  }
}

// Determinism: same spec, same process -> identical digest, identical
// serialized report. (Cross-run stability is pinned by the Table-2 golden
// fixtures in plan_test.)
TEST(PlanProperty, SameSpecSameDigestAndReport) {
  const plan::PlanSpec spec = random_spec(3);
  const plan::PlanReport a = plan::search(spec);
  const plan::PlanReport b = plan::search(spec);
  EXPECT_EQ(a.digest(), b.digest());
  EXPECT_EQ(a.to_jsonl(), b.to_jsonl());
  EXPECT_EQ(a.render_table(0), b.render_table(0));
}

TEST(PlanProperty, DigestSeparatesDifferentSpecs) {
  plan::PlanSpec spec = random_spec(3);
  const std::uint64_t base = plan::search(spec).digest();
  spec.global_batch *= 2;
  EXPECT_NE(plan::search(spec).digest(), base);
}

// Recompute variants trade step time for memory: same layout, strictly
// smaller footprint, strictly more analytic compute.
TEST(PlanProperty, RecomputeVariantsTradeTimeForMemory) {
  plan::PlanSpec spec = random_spec(2);
  spec.search_recompute = true;
  int pairs = 0;
  for (const auto& cand : plan::enumerate_space(spec)) {
    if (!cand.full_recompute) continue;
    plan::PlanCandidate stash = cand;
    stash.full_recompute = false;
    EXPECT_LT(plan::candidate_memory(spec, cand).total(),
              plan::candidate_memory(spec, stash).total())
        << plan::candidate_name(cand);
    EXPECT_GT(plan::analytic_cost(spec, cand).step,
              plan::analytic_cost(spec, stash).step)
        << plan::candidate_name(cand);
    ++pairs;
  }
  EXPECT_GT(pairs, 0);
}

// The analytic bubble fraction the report exposes is the textbook
// (pp-1)/(vpp*m) closed form, and the in-flight peak is bounded by the
// microbatch count (GPipe keeps everything alive, 1F1B drains).
TEST(PlanProperty, AnalyticBubbleAndInflightBounds) {
  const plan::PlanSpec spec = random_spec(1);
  for (const auto& cand : plan::enumerate_space(spec)) {
    const int m = cand.microbatches(spec);
    const int peak = plan::peak_inflight(spec, cand);
    EXPECT_GE(peak, 1) << plan::candidate_name(cand);
    // Interleaving stashes one activation per in-flight (microbatch, chunk)
    // pair, so the peak may exceed m but never m * vpp.
    EXPECT_LE(peak, m * cand.par.vpp) << plan::candidate_name(cand);
    const auto cost = plan::analytic_cost(spec, cand);
    EXPECT_NEAR(cost.bubble_fraction,
                static_cast<double>(cand.par.pp - 1) /
                    (static_cast<double>(cand.par.vpp) * m),
                1e-12)
        << plan::candidate_name(cand);
    EXPECT_GT(cost.step, 0);
    EXPECT_GT(cost.mfu, 0);
  }
}

}  // namespace
}  // namespace ms
