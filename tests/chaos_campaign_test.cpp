// Full-size campaign runs (labels: chaos, slow). This is the nightly CI
// surface: a seed-matrix campaign on the production-shaped config must pass
// on the healthy recovery path, and the MS_CHAOS_CANARY-style weakened
// detector must fail, shrink to a tiny schedule and emit a usable repro.
#include <gtest/gtest.h>

#include <fstream>
#include <sstream>

#include "chaos/campaign.h"
#include "support/json.h"
#include "support/tmpdir.h"
#include "telemetry/exporters.h"
#include "telemetry/metrics.h"

namespace ms::chaos {
namespace {

constexpr std::uint64_t kBaseSeed = 0xC405;  // the CLI default

TEST(ChaosCampaign, HealthyMixedCampaignPasses) {
  telemetry::MetricsRegistry metrics;
  ChaosConfig cfg;
  cfg.metrics = &metrics;
  const auto result = run_campaign(cfg, *find_scenario("mixed"), kBaseSeed, 8);
  EXPECT_EQ(result.passed, result.seeds);
  for (const auto& failure : result.failures) {
    ADD_FAILURE() << "seed " << failure.seed << ": " << failure.reason
                  << " (" << failure.repro << ")";
  }
  // The campaign exported its run counter.
  const auto text = telemetry::prometheus_text(metrics.snapshot());
  EXPECT_NE(text.find("chaos_runs_total"), std::string::npos);
  EXPECT_NE(text.find("scenario=\"mixed\""), std::string::npos);
}

TEST(ChaosCampaign, CanaryCampaignFailsAndShrinksSmall) {
  ChaosConfig cfg;
  cfg.canary = true;
  const auto result = run_campaign(cfg, *find_scenario("mixed"), kBaseSeed, 8);
  ASSERT_FALSE(result.failures.empty())
      << "the weakened detector escaped an 8-seed mixed campaign";
  for (const auto& failure : result.failures) {
    // The acceptance bar: the shrinker lands at <= 3 injected faults.
    EXPECT_LE(failure.minimized.size(), 3u) << "seed " << failure.seed;
    EXPECT_GE(failure.minimized_record.undetected_faults, 1)
        << "seed " << failure.seed;
    // The shrunken schedule must keep a fault the canary cannot see.
    bool has_hang = false;
    for (const auto& fault : failure.minimized) {
      has_hang |= fault.kind == FaultKind::kFailStop &&
                  fault.fail_type == ft::FaultType::kGpuHang;
    }
    EXPECT_TRUE(has_hang) << "seed " << failure.seed;
    EXPECT_NE(failure.repro.find("--canary"), std::string::npos);
  }
}

TEST(ChaosCampaign, ReplayingAFailingSeedReproducesTheRecord) {
  ChaosConfig cfg;
  cfg.canary = true;
  const auto result = run_campaign(cfg, *find_scenario("mixed"), kBaseSeed, 8);
  ASSERT_FALSE(result.failures.empty());
  const auto& failure = result.failures.front();
  // What the printed repro command executes: regenerate + rerun that seed.
  const auto* mixed = find_scenario("mixed");
  const auto replayed = run_scenario(cfg, *mixed, failure.seed);
  EXPECT_TRUE(identical(replayed, failure.record));
  EXPECT_EQ(replayed.record_digest, failure.record.record_digest);
  EXPECT_EQ(replayed.engine_digest, failure.record.engine_digest);
}

TEST(ChaosCampaign, FailingSeedArtifactsLandOnDisk) {
  ChaosConfig cfg;
  cfg.canary = true;
  const auto result = run_campaign(cfg, *find_scenario("mixed"), kBaseSeed, 8);
  ASSERT_FALSE(result.failures.empty());
  testsupport::TmpDir dir("chaos-campaign");
  const auto path = write_failure_artifact(dir.path(), result.failures.front());
  ASSERT_FALSE(path.empty());
  std::ifstream in(path);
  std::stringstream buf;
  buf << in.rdbuf();
  const auto doc = testjson::parse(buf.str());
  ASSERT_TRUE(doc.is_object());
  EXPECT_TRUE(doc.at("record").is_object());
  EXPECT_EQ(doc.at("repro").str, result.failures.front().repro);
  // The embedded record round-trips through the chaos parser too.
  OutcomeRecord record;
  ASSERT_TRUE(from_json(to_json(result.failures.front().record), record));
  EXPECT_TRUE(identical(record, result.failures.front().record));
}

}  // namespace
}  // namespace ms::chaos
