// Shared scenario builders for the test suites. One canonical "small"
// configuration per subsystem, so every test exercises the same topology /
// job shapes and a change to a default breaks in one place, not five.
#pragma once

#include "chaos/config.h"
#include "core/time.h"
#include "ft/workflow.h"
#include "net/topology.h"
#include "optim/nn.h"

namespace ms::testsupport {

/// The 32-host, 2-rail, 2-pod Clos used across the network tests: small
/// enough to route instantly, deep enough to have real tor/agg/spine tiers.
inline net::ClosParams small_clos_params() {
  net::ClosParams p;
  p.hosts = 32;
  p.nics_per_host = 2;
  p.hosts_per_tor = 8;
  p.pods = 2;
  p.aggs_per_pod = 2;
  p.spines_per_plane = 2;
  return p;
}

/// The 32-node fault-tolerance workflow used by the ft tests.
inline ft::WorkflowConfig small_workflow() {
  ft::WorkflowConfig cfg;
  cfg.nodes = 32;
  return cfg;
}

/// The tiny GPT the optimizer/integration tests train end-to-end.
inline optim::TinyGptConfig small_tinygpt() {
  optim::TinyGptConfig cfg;
  cfg.vocab = 16;
  cfg.seq_len = 8;
  cfg.hidden = 16;
  cfg.heads = 2;
  cfg.layers = 1;
  cfg.ffn_hidden = 32;
  return cfg;
}

/// Chaos config compressed for tests: a 30-minute window with a 10-minute
/// checkpoint cadence keeps single runs in the tens of milliseconds while
/// leaving room for multi-incident schedules.
inline chaos::ChaosConfig small_chaos_config() {
  chaos::ChaosConfig cfg;
  cfg.duration = minutes(30.0);
  cfg.checkpoint_interval = minutes(10.0);
  cfg.node_repair_time = minutes(20.0);
  return cfg;
}

}  // namespace ms::testsupport
