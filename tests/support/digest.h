// Determinism helpers: assert that a seeded computation is bit-stable.
#pragma once

#include <gtest/gtest.h>

#include <cstdint>
#include <utility>

namespace ms::testsupport {

/// Runs `make` twice and returns both results, for bitwise comparison of
/// digests / records produced from the same seed.
template <typename Fn>
auto twice(Fn&& make) {
  auto first = make();
  auto second = make();
  return std::make_pair(std::move(first), std::move(second));
}

/// EXPECTs that `digest_of(make())` is identical across `runs` evaluations.
template <typename Fn, typename DigestFn>
void expect_deterministic(Fn&& make, DigestFn&& digest_of, int runs = 3) {
  const std::uint64_t want = digest_of(make());
  for (int i = 1; i < runs; ++i) {
    EXPECT_EQ(digest_of(make()), want) << "run " << i << " diverged";
  }
}

}  // namespace ms::testsupport
