// RAII temporary directory for tests that touch the filesystem (campaign
// failure artifacts, exporter files). Created under TMPDIR (default /tmp),
// removed recursively on destruction.
#pragma once

#include <cstdlib>
#include <filesystem>
#include <stdexcept>
#include <string>

namespace ms::testsupport {

class TmpDir {
 public:
  explicit TmpDir(const std::string& prefix = "ms-test") {
    namespace fs = std::filesystem;
    const char* base = std::getenv("TMPDIR");
    std::string tmpl = (base != nullptr && base[0] != '\0' ? base : "/tmp");
    tmpl += "/" + prefix + "-XXXXXX";
    std::string buf = tmpl;
    if (::mkdtemp(buf.data()) == nullptr) {
      throw std::runtime_error("mkdtemp failed for " + tmpl);
    }
    path_ = buf;
  }
  ~TmpDir() {
    std::error_code ec;  // best-effort cleanup; never throw from a dtor
    std::filesystem::remove_all(path_, ec);
  }
  TmpDir(const TmpDir&) = delete;
  TmpDir& operator=(const TmpDir&) = delete;

  const std::string& path() const { return path_; }
  std::string file(const std::string& name) const { return path_ + "/" + name; }

 private:
  std::string path_;
};

}  // namespace ms::testsupport
