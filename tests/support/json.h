// Minimal recursive-descent JSON parser for test assertions (exporter
// well-formedness, Chrome-trace round-trips). Supports the full JSON value
// grammar; numbers are held as double. Not a production parser — it exists
// so tests can verify emitted JSON without external dependencies.
#pragma once

#include <cctype>
#include <cstdlib>
#include <map>
#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

namespace ms::testjson {

struct Value;
using Object = std::map<std::string, Value>;
using Array = std::vector<Value>;

struct Value {
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };
  Kind kind = Kind::kNull;
  bool boolean = false;
  double number = 0;
  std::string str;
  std::shared_ptr<Array> array;
  std::shared_ptr<Object> object;

  bool is_object() const { return kind == Kind::kObject; }
  bool is_array() const { return kind == Kind::kArray; }
  const Value& at(const std::string& key) const { return object->at(key); }
  bool has(const std::string& key) const {
    return kind == Kind::kObject && object->count(key) > 0;
  }
  const Value& operator[](std::size_t i) const { return (*array)[i]; }
  std::size_t size() const {
    return kind == Kind::kArray ? array->size()
                                : (kind == Kind::kObject ? object->size() : 0);
  }
};

class Parser {
 public:
  explicit Parser(const std::string& text) : s_(text) {}

  Value parse() {
    Value v = value();
    skip_ws();
    if (pos_ != s_.size()) fail("trailing characters");
    return v;
  }

 private:
  [[noreturn]] void fail(const std::string& what) {
    throw std::runtime_error("JSON parse error at offset " +
                             std::to_string(pos_) + ": " + what);
  }
  void skip_ws() {
    while (pos_ < s_.size() &&
           std::isspace(static_cast<unsigned char>(s_[pos_]))) {
      ++pos_;
    }
  }
  char peek() {
    if (pos_ >= s_.size()) fail("unexpected end");
    return s_[pos_];
  }
  void expect(char c) {
    if (peek() != c) fail(std::string("expected '") + c + "'");
    ++pos_;
  }
  bool consume_literal(const char* lit) {
    const std::size_t len = std::string(lit).size();
    if (s_.compare(pos_, len, lit) == 0) {
      pos_ += len;
      return true;
    }
    return false;
  }

  Value value() {
    skip_ws();
    const char c = peek();
    Value v;
    if (c == '{') {
      v.kind = Value::Kind::kObject;
      v.object = std::make_shared<Object>();
      expect('{');
      skip_ws();
      if (peek() == '}') {
        ++pos_;
        return v;
      }
      while (true) {
        skip_ws();
        const std::string key = string_body();
        skip_ws();
        expect(':');
        (*v.object)[key] = value();
        skip_ws();
        if (peek() == ',') {
          ++pos_;
          continue;
        }
        expect('}');
        return v;
      }
    }
    if (c == '[') {
      v.kind = Value::Kind::kArray;
      v.array = std::make_shared<Array>();
      expect('[');
      skip_ws();
      if (peek() == ']') {
        ++pos_;
        return v;
      }
      while (true) {
        v.array->push_back(value());
        skip_ws();
        if (peek() == ',') {
          ++pos_;
          continue;
        }
        expect(']');
        return v;
      }
    }
    if (c == '"') {
      v.kind = Value::Kind::kString;
      v.str = string_body();
      return v;
    }
    if (consume_literal("true")) {
      v.kind = Value::Kind::kBool;
      v.boolean = true;
      return v;
    }
    if (consume_literal("false")) {
      v.kind = Value::Kind::kBool;
      return v;
    }
    if (consume_literal("null")) return v;
    // Number.
    const std::size_t start = pos_;
    if (peek() == '-') ++pos_;
    while (pos_ < s_.size() &&
           (std::isdigit(static_cast<unsigned char>(s_[pos_])) ||
            s_[pos_] == '.' || s_[pos_] == 'e' || s_[pos_] == 'E' ||
            s_[pos_] == '+' || s_[pos_] == '-')) {
      ++pos_;
    }
    if (pos_ == start) fail("invalid value");
    v.kind = Value::Kind::kNumber;
    v.number = std::strtod(s_.substr(start, pos_ - start).c_str(), nullptr);
    return v;
  }

  std::string string_body() {
    expect('"');
    std::string out;
    while (true) {
      const char c = peek();
      ++pos_;
      if (c == '"') return out;
      if (c == '\\') {
        const char esc = peek();
        ++pos_;
        switch (esc) {
          case '"': out += '"'; break;
          case '\\': out += '\\'; break;
          case '/': out += '/'; break;
          case 'b': out += '\b'; break;
          case 'f': out += '\f'; break;
          case 'n': out += '\n'; break;
          case 'r': out += '\r'; break;
          case 't': out += '\t'; break;
          case 'u': {
            if (pos_ + 4 > s_.size()) fail("truncated \\u escape");
            const std::string hex = s_.substr(pos_, 4);
            pos_ += 4;
            const long code = std::strtol(hex.c_str(), nullptr, 16);
            // Tests only emit ASCII control escapes; keep it simple.
            out += static_cast<char>(code < 128 ? code : '?');
            break;
          }
          default: fail("bad escape");
        }
        continue;
      }
      out += c;
    }
  }

  const std::string& s_;
  std::size_t pos_ = 0;
};

inline Value parse(const std::string& text) { return Parser(text).parse(); }

}  // namespace ms::testjson
