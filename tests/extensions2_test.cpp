// Tests for the second extension batch: hierarchical all-reduce, Chrome
// trace export, LR schedules and gradient clipping.
#include <gtest/gtest.h>

#include <cmath>

#include "collective/comm.h"
#include "diag/timeline.h"
#include "optim/schedule.h"

namespace ms {
namespace {

// ----------------------------------------------- hierarchical all-reduce

TEST(HierarchicalAllReduce, BeatsFlatRingAtScale) {
  collective::CollectiveModel coll{collective::ClusterSpec{}};
  for (int gpus : {64, 512, 4096}) {
    const TimeNs flat =
        coll.all_reduce(1_GiB, gpus, collective::Domain::kInterNode);
    const TimeNs hier = coll.hierarchical_all_reduce(1_GiB, gpus / 8, 8);
    EXPECT_LT(hier, flat) << gpus << " GPUs";
  }
}

TEST(HierarchicalAllReduce, SingleNodeReducesToNvlinkOnly) {
  collective::CollectiveModel coll{collective::ClusterSpec{}};
  const TimeNs hier = coll.hierarchical_all_reduce(1_GiB, 1, 8);
  const TimeNs intra_only =
      coll.reduce_scatter(1_GiB, 8, collective::Domain::kIntraNode) +
      coll.all_gather(1_GiB, 8, collective::Domain::kIntraNode);
  EXPECT_EQ(hier, intra_only);
}

TEST(HierarchicalAllReduce, ZeroBytesFree) {
  collective::CollectiveModel coll{collective::ClusterSpec{}};
  EXPECT_EQ(coll.hierarchical_all_reduce(0, 16, 8), 0);
}

TEST(HierarchicalAllReduce, NicBytesAreOneEighth) {
  // The inter-node phase should move ~1/8 of the payload per NIC: with
  // latency zeroed, hierarchical inter time == flat(bytes/8) over nodes.
  collective::ClusterSpec c;
  c.net_latency = 0;
  c.nvlink_latency = 0;
  collective::CollectiveModel coll{c};
  const TimeNs hier = coll.hierarchical_all_reduce(8_GiB, 64, 8);
  const TimeNs intra =
      coll.reduce_scatter(8_GiB, 8, collective::Domain::kIntraNode) +
      coll.all_gather(8_GiB, 8, collective::Domain::kIntraNode);
  const TimeNs inter =
      coll.all_reduce(1_GiB, 64, collective::Domain::kInterNode);
  EXPECT_EQ(hier, intra + inter);
}

// ----------------------------------------------------------- chrome trace

TEST(ChromeTrace, EmitsValidEventObjects) {
  diag::TimelineTrace trace;
  trace.add({.rank = 3, .name = "fwd", .tag = "fwd",
             .start = microseconds(10.0), .end = microseconds(25.0)});
  trace.add({.rank = 4, .name = "bwd", .tag = "bwd",
             .start = microseconds(25.0), .end = microseconds(55.0)});
  const std::string json = trace.chrome_trace_json();
  EXPECT_NE(json.find("\"traceEvents\":["), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"fwd\""), std::string::npos);
  EXPECT_NE(json.find("\"pid\":3"), std::string::npos);
  EXPECT_NE(json.find("\"ts\":10"), std::string::npos);
  EXPECT_NE(json.find("\"dur\":15"), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  // Braces balance.
  int depth = 0;
  for (char ch : json) {
    if (ch == '{') ++depth;
    if (ch == '}') --depth;
    EXPECT_GE(depth, 0);
  }
  EXPECT_EQ(depth, 0);
}

TEST(ChromeTrace, EmptyTraceIsValid) {
  diag::TimelineTrace trace;
  EXPECT_EQ(trace.chrome_trace_json(), "{\"traceEvents\":[]}");
}

// ------------------------------------------------------------ lr schedule

TEST(LrSchedule, LinearWarmup) {
  optim::LrSchedule sched{.base_lr = 1.0f, .min_lr = 0.0f,
                          .warmup_steps = 10, .total_steps = 100};
  EXPECT_NEAR(sched.at(0), 0.1f, 1e-6);
  EXPECT_NEAR(sched.at(4), 0.5f, 1e-6);
  EXPECT_NEAR(sched.at(9), 1.0f, 1e-6);
}

TEST(LrSchedule, CosineDecayToMin) {
  optim::LrSchedule sched{.base_lr = 1.0f, .min_lr = 0.1f,
                          .warmup_steps = 0, .total_steps = 100};
  EXPECT_NEAR(sched.at(0), 1.0f, 1e-5);
  EXPECT_NEAR(sched.at(50), 0.55f, 1e-2);  // halfway through the cosine
  EXPECT_NEAR(sched.at(100), 0.1f, 1e-6);
  EXPECT_NEAR(sched.at(5000), 0.1f, 1e-6);  // holds min after the end
}

TEST(LrSchedule, MonotoneDecreasingAfterWarmup) {
  optim::LrSchedule sched{.base_lr = 3e-4f, .min_lr = 3e-5f,
                          .warmup_steps = 20, .total_steps = 200};
  float prev = sched.at(20);
  for (int step = 21; step <= 200; ++step) {
    const float lr = sched.at(step);
    EXPECT_LE(lr, prev + 1e-9);
    prev = lr;
  }
}

// ------------------------------------------------------------- grad clip

TEST(GradClip, NoOpBelowThreshold) {
  auto w = optim::Tensor::from({1.0f, 2.0f}, {2}, true);
  w.grad()[0] = 0.3f;
  w.grad()[1] = 0.4f;  // norm 0.5
  std::vector<optim::Param> params{{"w", w}};
  const float norm = optim::clip_grad_norm(params, 1.0f);
  EXPECT_NEAR(norm, 0.5f, 1e-6);
  EXPECT_FLOAT_EQ(w.grad()[0], 0.3f);
}

TEST(GradClip, ScalesDownToMaxNorm) {
  auto w = optim::Tensor::from({0.0f, 0.0f}, {2}, true);
  w.grad()[0] = 3.0f;
  w.grad()[1] = 4.0f;  // norm 5
  std::vector<optim::Param> params{{"w", w}};
  const float norm = optim::clip_grad_norm(params, 1.0f);
  EXPECT_NEAR(norm, 5.0f, 1e-5);
  EXPECT_NEAR(w.grad()[0], 0.6f, 1e-6);
  EXPECT_NEAR(w.grad()[1], 0.8f, 1e-6);
  // Post-clip norm is exactly the cap.
  EXPECT_NEAR(std::hypot(w.grad()[0], w.grad()[1]), 1.0f, 1e-5);
}

TEST(GradClip, GlobalAcrossParams) {
  auto a = optim::Tensor::from({0.0f}, {1}, true);
  auto b = optim::Tensor::from({0.0f}, {1}, true);
  a.grad()[0] = 3.0f;
  b.grad()[0] = 4.0f;
  std::vector<optim::Param> params{{"a", a}, {"b", b}};
  optim::clip_grad_norm(params, 1.0f);
  EXPECT_NEAR(a.grad()[0], 0.6f, 1e-6);
  EXPECT_NEAR(b.grad()[0], 0.8f, 1e-6);
}

}  // namespace
}  // namespace ms
