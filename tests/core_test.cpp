#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>

#include "core/json.h"
#include "core/rng.h"
#include "core/stats.h"
#include "core/table.h"
#include "core/time.h"
#include "core/units.h"

namespace ms {
namespace {

// ---------------------------------------------------------------- time

TEST(Time, UnitConversionsRoundTrip) {
  EXPECT_EQ(seconds(1.0), kNsPerSec);
  EXPECT_EQ(milliseconds(1.0), kNsPerMs);
  EXPECT_EQ(microseconds(1.0), kNsPerUs);
  EXPECT_DOUBLE_EQ(to_seconds(seconds(2.5)), 2.5);
  EXPECT_DOUBLE_EQ(to_milliseconds(milliseconds(42.0)), 42.0);
  EXPECT_DOUBLE_EQ(to_hours(hours(3.0)), 3.0);
  EXPECT_DOUBLE_EQ(to_days(days(1.5)), 1.5);
}

TEST(Time, MinutesAndHoursCompose) {
  EXPECT_EQ(minutes(1.0), seconds(60.0));
  EXPECT_EQ(hours(1.0), minutes(60.0));
  EXPECT_EQ(days(1.0), hours(24.0));
}

TEST(Time, FormatDurationPicksUnit) {
  EXPECT_EQ(format_duration(nanoseconds(5)), "5ns");
  EXPECT_EQ(format_duration(microseconds(12.0)), "12.000us");
  EXPECT_EQ(format_duration(milliseconds(3.5)), "3.500ms");
  EXPECT_EQ(format_duration(seconds(1.25)), "1.250s");
  EXPECT_EQ(format_duration(minutes(2.0)), "2.00min");
  EXPECT_EQ(format_duration(hours(5.0)), "5.00h");
}

TEST(Time, FormatNegativeDuration) {
  EXPECT_EQ(format_duration(-seconds(1.5)), "-1.500s");
}

// ---------------------------------------------------------------- units

TEST(Units, BandwidthConversions) {
  EXPECT_DOUBLE_EQ(gbps(400.0), 50e9);  // 400 Gb/s == 50 GB/s
  EXPECT_DOUBLE_EQ(to_gbps(gbps(200.0)), 200.0);
  EXPECT_DOUBLE_EQ(to_gBps(gBps(25.0)), 25.0);
}

TEST(Units, ByteLiterals) {
  EXPECT_EQ(1_KiB, 1024);
  EXPECT_EQ(1_MiB, 1024 * 1024);
  EXPECT_EQ(2_GiB, 2LL << 30);
}

// ---------------------------------------------------------------- rng

TEST(Rng, Deterministic) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.next_u64(), b.next_u64());
  }
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.next_u64() == b.next_u64()) ++same;
  }
  EXPECT_LT(same, 2);
}

TEST(Rng, UniformInUnitInterval) {
  Rng r(7);
  for (int i = 0; i < 10000; ++i) {
    const double u = r.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformMeanApproximatesHalf) {
  Rng r(11);
  RunningStat s;
  for (int i = 0; i < 100000; ++i) s.add(r.uniform());
  EXPECT_NEAR(s.mean(), 0.5, 0.01);
}

TEST(Rng, NormalMoments) {
  Rng r(13);
  RunningStat s;
  for (int i = 0; i < 200000; ++i) s.add(r.normal(3.0, 2.0));
  EXPECT_NEAR(s.mean(), 3.0, 0.05);
  EXPECT_NEAR(s.stddev(), 2.0, 0.05);
}

TEST(Rng, ExponentialMean) {
  Rng r(17);
  RunningStat s;
  for (int i = 0; i < 200000; ++i) s.add(r.exponential(5.0));
  EXPECT_NEAR(s.mean(), 5.0, 0.1);
  EXPECT_GE(s.min(), 0.0);
}

TEST(Rng, UniformIntInclusiveRange) {
  Rng r(19);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    const auto v = r.uniform_int(-2, 3);
    EXPECT_GE(v, -2);
    EXPECT_LE(v, 3);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 6u);  // all values hit
}

TEST(Rng, SampleWithoutReplacementDistinct) {
  Rng r(23);
  auto idx = r.sample_without_replacement(100, 30);
  EXPECT_EQ(idx.size(), 30u);
  std::set<std::size_t> uniq(idx.begin(), idx.end());
  EXPECT_EQ(uniq.size(), 30u);
  for (auto i : idx) EXPECT_LT(i, 100u);
}

TEST(Rng, SampleAllIsPermutation) {
  Rng r(29);
  auto idx = r.sample_without_replacement(10, 10);
  std::set<std::size_t> uniq(idx.begin(), idx.end());
  EXPECT_EQ(uniq.size(), 10u);
}

TEST(Rng, ForkIndependent) {
  Rng parent(31);
  Rng child = parent.fork();
  // Child stream should not mirror parent stream.
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (parent.next_u64() == child.next_u64()) ++same;
  }
  EXPECT_LT(same, 2);
}

TEST(Rng, ChanceExtremes) {
  Rng r(37);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(r.chance(0.0));
    EXPECT_TRUE(r.chance(1.0));
  }
}

TEST(Rng, ShuffleKeepsElements) {
  Rng r(41);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8};
  auto sorted = v;
  r.shuffle(v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, sorted);
}

// ---------------------------------------------------------------- stats

TEST(RunningStat, BasicMoments) {
  RunningStat s;
  for (double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(v);
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.stddev(), 2.138, 1e-3);  // sample stddev
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
  EXPECT_DOUBLE_EQ(s.sum(), 40.0);
}

TEST(RunningStat, MergeEqualsCombined) {
  Rng r(43);
  RunningStat a, b, all;
  for (int i = 0; i < 1000; ++i) {
    const double v = r.normal();
    if (i % 2) {
      a.add(v);
    } else {
      b.add(v);
    }
    all.add(v);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-12);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-10);
}

TEST(RunningStat, EmptyIsSafe) {
  RunningStat s;
  EXPECT_TRUE(s.empty());
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
}

TEST(Percentiles, QuantilesOfKnownSet) {
  Percentiles p;
  for (int i = 1; i <= 100; ++i) p.add(i);
  EXPECT_NEAR(p.median(), 50.5, 1e-9);
  EXPECT_NEAR(p.quantile(0.0), 1.0, 1e-9);
  EXPECT_NEAR(p.quantile(1.0), 100.0, 1e-9);
  EXPECT_NEAR(p.p99(), 99.01, 1e-9);
}

TEST(Percentiles, InterleavedAddAndQuery) {
  Percentiles p;
  p.add(3.0);
  p.add(1.0);
  EXPECT_NEAR(p.median(), 2.0, 1e-9);
  p.add(2.0);
  EXPECT_NEAR(p.median(), 2.0, 1e-9);
}

TEST(Histogram, BucketsAndOverflow) {
  Histogram h(0.0, 10.0, 10);
  for (int i = 0; i < 10; ++i) h.add(i + 0.5);
  h.add(-1.0);
  h.add(11.0);
  EXPECT_EQ(h.total(), 12u);
  EXPECT_EQ(h.underflow(), 1u);
  EXPECT_EQ(h.overflow(), 1u);
  for (std::size_t i = 0; i < 10; ++i) EXPECT_EQ(h.bucket(i), 1u);
  EXPECT_DOUBLE_EQ(h.bucket_lo(3), 3.0);
  EXPECT_DOUBLE_EQ(h.bucket_hi(3), 4.0);
}

TEST(Histogram, AsciiRenders) {
  Histogram h(0.0, 4.0, 4);
  h.add(0.5);
  h.add(1.5);
  h.add(1.6);
  const std::string art = h.ascii(20);
  EXPECT_NE(art.find('#'), std::string::npos);
}

TEST(Series, TailMean) {
  Series s;
  for (int i = 0; i < 10; ++i) s.add(i, i);
  EXPECT_DOUBLE_EQ(s.tail_mean(2), 8.5);
  EXPECT_DOUBLE_EQ(s.tail_mean(100), 4.5);  // clamped to size
}

TEST(Series, AsciiChartContainsGlyphs) {
  Series s1, s2;
  s1.name = "a";
  s2.name = "b";
  for (int i = 0; i < 20; ++i) {
    s1.add(i, std::sin(i * 0.3));
    s2.add(i, std::cos(i * 0.3));
  }
  const std::string chart = ascii_chart({s1, s2});
  EXPECT_NE(chart.find('*'), std::string::npos);
  EXPECT_NE(chart.find('o'), std::string::npos);
  EXPECT_NE(chart.find("a"), std::string::npos);
}

// ---------------------------------------------------------------- table

TEST(Table, RendersAlignedCells) {
  Table t({"name", "value"});
  t.add_row({"alpha", "1"});
  t.add_row({"b", "22222"});
  const std::string s = t.to_string();
  EXPECT_NE(s.find("| alpha |"), std::string::npos);
  EXPECT_NE(s.find("22222"), std::string::npos);
  // Every line has equal width.
  std::size_t width = s.find('\n');
  std::size_t pos = 0;
  while (pos < s.size()) {
    std::size_t next = s.find('\n', pos);
    EXPECT_EQ(next - pos, width);
    pos = next + 1;
  }
}

TEST(Table, Formatters) {
  EXPECT_EQ(Table::fmt(3.14159, 2), "3.14");
  EXPECT_EQ(Table::fmt_int(1234), "1234");
  EXPECT_EQ(Table::fmt_pct(0.552), "55.2%");
}

// --------------------------------------------------------- hdr histogram

TEST(HdrHistogram, TracksMomentsExactly) {
  HdrHistogram h;
  EXPECT_TRUE(h.empty());
  h.add(0.001);
  h.add(0.002);
  h.add(0.003, 2);
  EXPECT_EQ(h.total(), 4u);
  EXPECT_DOUBLE_EQ(h.sum(), 0.009);
  EXPECT_DOUBLE_EQ(h.mean(), 0.00225);
  EXPECT_DOUBLE_EQ(h.min(), 0.001);
  EXPECT_DOUBLE_EQ(h.max(), 0.003);
}

TEST(HdrHistogram, QuantilesWithinBucketResolution) {
  HdrHistogram h;
  for (int i = 1; i <= 1000; ++i) h.add(i * 1e-3);  // 1ms .. 1s uniform
  // 32 buckets/decade => ~7.5% relative bucket width; allow 10%.
  EXPECT_NEAR(h.p50(), 0.5, 0.05);
  EXPECT_NEAR(h.p99(), 0.99, 0.1);
  EXPECT_DOUBLE_EQ(h.quantile(0.0), h.min());
  EXPECT_DOUBLE_EQ(h.quantile(1.0), h.max());
}

TEST(HdrHistogram, MergeEqualsCombinedStream) {
  // The fixed bucket layout makes merge exact: merging per-rank sketches
  // gives the same sketch as observing the union.
  HdrHistogram a, b, combined;
  for (int i = 1; i <= 40; ++i) {
    const double x = i * 2.5e-4;
    (i % 2 == 0 ? a : b).add(x);
    combined.add(x);
  }
  a.merge(b);
  EXPECT_EQ(a.total(), combined.total());
  EXPECT_DOUBLE_EQ(a.sum(), combined.sum());
  EXPECT_DOUBLE_EQ(a.p50(), combined.p50());
  const auto ba = a.nonzero_buckets();
  const auto bc = combined.nonzero_buckets();
  ASSERT_EQ(ba.size(), bc.size());
  for (std::size_t i = 0; i < ba.size(); ++i) {
    EXPECT_DOUBLE_EQ(ba[i].lo, bc[i].lo);
    EXPECT_EQ(ba[i].count, bc[i].count);
  }
}

TEST(HdrHistogram, OutOfRangeAndNonFiniteGoToEdgeBuckets) {
  HdrHistogram h;
  h.add(0.0);    // below range -> underflow
  h.add(-5.0);   // negative -> underflow
  h.add(1e15);   // above range -> overflow
  h.add(0.5);
  EXPECT_EQ(h.total(), 4u);
  EXPECT_DOUBLE_EQ(h.min(), -5.0);
  EXPECT_DOUBLE_EQ(h.max(), 1e15);
  // Quantiles stay clamped to observed extremes.
  EXPECT_LE(h.quantile(1.0), 1e15);
}

TEST(HdrHistogram, BucketsCoverValues) {
  HdrHistogram h;
  h.add(0.37);
  const auto buckets = h.nonzero_buckets();
  ASSERT_EQ(buckets.size(), 1u);
  EXPECT_LE(buckets[0].lo, 0.37);
  EXPECT_GT(buckets[0].hi, 0.37);
  EXPECT_EQ(buckets[0].count, 1u);
}

// ---------------------------------------------------------------- json

TEST(Json, EscapeCoversQuotesBackslashesAndControls) {
  EXPECT_EQ(json::escape("plain"), "plain");
  EXPECT_EQ(json::escape("a\"b"), "a\\\"b");
  EXPECT_EQ(json::escape("a\\b"), "a\\\\b");
  EXPECT_EQ(json::escape("a\nb\tc\r"), "a\\nb\\tc\\r");
  EXPECT_EQ(json::escape(std::string("a\x01") + "b"), "a\\u0001b");
}

TEST(Json, ParseRoundTripsEscapedStrings) {
  const std::string original = "fwd \"q\" \\ \n\t\x02 end";
  json::Value v;
  ASSERT_TRUE(json::parse("\"" + json::escape(original) + "\"", v));
  EXPECT_EQ(v.kind, json::Value::Kind::kString);
  EXPECT_EQ(v.str, original);
}

TEST(Json, ParseFullValueGrammar) {
  json::Value v;
  ASSERT_TRUE(json::parse(
      R"({"a":1.5,"b":[true,false,null],"c":{"n":-2e3},"s":"x"})", v));
  ASSERT_TRUE(v.is_object());
  EXPECT_DOUBLE_EQ(v.num("a"), 1.5);
  ASSERT_EQ(v.at("b").size(), 3u);
  EXPECT_TRUE(v.at("b")[0].boolean);
  EXPECT_EQ(v.at("b")[2].kind, json::Value::Kind::kNull);
  EXPECT_DOUBLE_EQ(v.at("c").num("n"), -2000.0);
  EXPECT_EQ(v.text("s"), "x");
  EXPECT_EQ(v.text("missing", "dflt"), "dflt");
}

TEST(Json, ParseRejectsMalformedInput) {
  json::Value v;
  EXPECT_FALSE(json::parse("", v));
  EXPECT_FALSE(json::parse("{", v));
  EXPECT_FALSE(json::parse("{\"a\":}", v));
  EXPECT_FALSE(json::parse("[1,]", v));
  EXPECT_FALSE(json::parse("\"unterminated", v));
  EXPECT_FALSE(json::parse("{} trailing", v));
}

TEST(Json, ParseDecodesUnicodeEscapes) {
  json::Value v;
  ASSERT_TRUE(json::parse("\"a\\u0041\\u00e9\"", v));
  EXPECT_EQ(v.str, "aA\xc3\xa9");
}

}  // namespace
}  // namespace ms
