// Parameterized property sweeps (TEST_P): invariants that must hold across
// whole configuration grids, not just hand-picked examples.
#include <gtest/gtest.h>

#include <map>
#include <set>
#include <tuple>

#include "collective/plan.h"
#include "engine/job.h"
#include "net/ecmp.h"
#include "net/flowsim.h"
#include "net/topology.h"
#include "parallel/mapping.h"
#include "parallel/pipeline.h"
#include "sim/engine.h"
#include "sim/graph.h"

namespace ms {
namespace {

// =============================================== pipeline schedule sweep

struct ScheduleCase {
  int pp, vpp, m;
};

class ScheduleProperty : public ::testing::TestWithParam<ScheduleCase> {};

TEST_P(ScheduleProperty, EveryPassExactlyOnceAndOrdered) {
  const auto [pp, vpp, m] = GetParam();
  for (int stage = 0; stage < pp; ++stage) {
    auto sched = parallel::schedule_for_stage(pp, stage, vpp, m);
    ASSERT_EQ(sched.size(), static_cast<std::size_t>(2 * m * vpp));
    std::set<std::pair<int, int>> fwd, bwd;
    for (const auto& e : sched) {
      const auto key = std::make_pair(e.chunk, e.microbatch);
      if (e.pass == parallel::PassType::kForward) {
        EXPECT_TRUE(fwd.insert(key).second);
      } else {
        EXPECT_TRUE(fwd.count(key)) << "B before F";
        EXPECT_TRUE(bwd.insert(key).second);
      }
    }
    EXPECT_EQ(fwd.size(), static_cast<std::size_t>(m * vpp));
    EXPECT_EQ(bwd.size(), static_cast<std::size_t>(m * vpp));
  }
}

TEST_P(ScheduleProperty, InflightNeverExceedsWarmupPlusOne) {
  const auto [pp, vpp, m] = GetParam();
  for (int stage = 0; stage < pp; ++stage) {
    auto sched = parallel::schedule_for_stage(pp, stage, vpp, m);
    const int peak = parallel::peak_inflight_microbatches(sched);
    const int warmup = parallel::warmup_slots(pp, stage, vpp, m);
    EXPECT_LE(peak, warmup + 1);
  }
}

// The full cross-stage dependency graph must execute without deadlock and
// with a makespan bounded by the bubble model.
TEST_P(ScheduleProperty, CrossStageGraphExecutes) {
  const auto [pp, vpp, m] = GetParam();
  sim::Engine engine;
  sim::GraphExecutor graph(static_cast<std::size_t>(pp));
  const TimeNs f = milliseconds(1.0), b = milliseconds(2.0);

  std::map<std::tuple<int, int, int, int>, sim::OpId> ops;
  for (int s = 0; s < pp; ++s) {
    sim::OpId prev = sim::kInvalidOp;
    for (const auto& e : parallel::schedule_for_stage(pp, s, vpp, m)) {
      const bool is_bwd = e.pass == parallel::PassType::kBackward;
      sim::OpId op = graph.add_op({.name = "op",
                                   .stream = static_cast<sim::StreamId>(s),
                                   .duration = is_bwd ? b : f});
      ops[{s, e.chunk, e.microbatch, is_bwd}] = op;
      if (prev != sim::kInvalidOp) graph.add_dep(prev, op);
      prev = op;
    }
  }
  for (int s = 0; s < pp; ++s) {
    for (int c = 0; c < vpp; ++c) {
      for (int mb = 0; mb < m; ++mb) {
        // Forward deps.
        if (s > 0) {
          graph.add_dep(ops[{s - 1, c, mb, false}], ops[{s, c, mb, false}]);
        } else if (c > 0) {
          graph.add_dep(ops[{pp - 1, c - 1, mb, false}], ops[{0, c, mb, false}]);
        }
        // Backward deps.
        if (s < pp - 1) {
          graph.add_dep(ops[{s + 1, c, mb, true}], ops[{s, c, mb, true}]);
        } else if (c < vpp - 1) {
          graph.add_dep(ops[{0, c + 1, mb, true}], ops[{pp - 1, c, mb, true}]);
        } else {
          graph.add_dep(ops[{s, c, mb, false}], ops[{s, c, mb, true}]);
        }
      }
    }
  }
  const TimeNs makespan = graph.run(engine);  // throws on deadlock
  // Lower bound: every stage must run its own work.
  EXPECT_GE(makespan, m * vpp * (f + b));
  // Upper bound: ideal work plus the analytic bubble plus slack.
  const double bubble = parallel::analytic_bubble_fraction(pp, vpp, m);
  EXPECT_LE(to_seconds(makespan),
            to_seconds(m * vpp * (f + b)) * (1.0 + 2.5 * bubble) + 0.01);
}

INSTANTIATE_TEST_SUITE_P(
    Grid, ScheduleProperty,
    ::testing::Values(ScheduleCase{2, 1, 4}, ScheduleCase{2, 2, 4},
                      ScheduleCase{4, 1, 8}, ScheduleCase{4, 2, 8},
                      ScheduleCase{4, 3, 16}, ScheduleCase{8, 1, 8},
                      ScheduleCase{8, 2, 16}, ScheduleCase{8, 6, 32},
                      ScheduleCase{3, 4, 9}, ScheduleCase{6, 2, 12}),
    [](const auto& info) {
      return "pp" + std::to_string(info.param.pp) + "vpp" +
             std::to_string(info.param.vpp) + "m" +
             std::to_string(info.param.m);
    });

// ================================================= collective plan sweep

class PlanProperty : public ::testing::TestWithParam<int> {};

TEST_P(PlanProperty, AllGatherCompleteness) {
  const int n = GetParam();
  auto plan = collective::ring_all_gather_plan(n, static_cast<Bytes>(n) * 4096);
  std::vector<std::set<int>> owned(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) owned[static_cast<std::size_t>(i)].insert(i);
  for (const auto& round : plan) {
    std::vector<std::pair<int, int>> deliveries;
    for (const auto& s : round) {
      ASSERT_TRUE(owned[static_cast<std::size_t>(s.src)].count(s.chunk));
      deliveries.emplace_back(s.dst, s.chunk);
    }
    for (auto [dst, chunk] : deliveries) {
      owned[static_cast<std::size_t>(dst)].insert(chunk);
    }
  }
  for (const auto& o : owned) EXPECT_EQ(o.size(), static_cast<std::size_t>(n));
}

TEST_P(PlanProperty, AllReduceBytesMatchTheory) {
  const int n = GetParam();
  const Bytes total = static_cast<Bytes>(n) * 4096;
  auto plan = collective::ring_all_reduce_plan(n, total);
  // Ring all-reduce: every rank sends 2*(n-1)/n*S.
  const Bytes expected = 2 * (total / n) * (n - 1);
  for (int r = 0; r < n; ++r) {
    EXPECT_EQ(collective::bytes_sent_per_rank(plan, r), expected);
  }
}

TEST_P(PlanProperty, AllToAllRoundsAreConflictFreePermutations) {
  const int n = GetParam();
  auto plan = collective::all_to_all_plan(n, 1024);
  for (const auto& round : plan) {
    std::set<int> sources, dests;
    for (const auto& s : round) {
      EXPECT_TRUE(sources.insert(s.src).second);
      EXPECT_TRUE(dests.insert(s.dst).second);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Ranks, PlanProperty,
                         ::testing::Values(2, 3, 4, 5, 8, 12, 16, 32),
                         [](const auto& info) {
                           return "n" + std::to_string(info.param);
                         });

// ===================================================== topology sweep

struct TopoCase {
  int hosts, rails, hosts_per_tor, pods, aggs, spines;
};

class TopologyProperty : public ::testing::TestWithParam<TopoCase> {};

TEST_P(TopologyProperty, AllPairsConnectedOnEveryRail) {
  const auto p = GetParam();
  net::ClosParams cp;
  cp.hosts = p.hosts;
  cp.nics_per_host = p.rails;
  cp.hosts_per_tor = p.hosts_per_tor;
  cp.pods = p.pods;
  cp.aggs_per_pod = p.aggs;
  cp.spines_per_plane = p.spines;
  net::ClosTopology topo(cp);
  Rng rng(99);
  for (int trial = 0; trial < 24; ++trial) {
    const int a = static_cast<int>(rng.uniform_index(p.hosts));
    const int b = static_cast<int>(rng.uniform_index(p.hosts));
    if (a == b) continue;
    const int rail = static_cast<int>(rng.uniform_index(p.rails));
    auto paths = topo.ecmp_paths(a, b, rail);
    ASSERT_FALSE(paths.empty());
    for (const auto& path : paths) {
      EXPECT_EQ(topo.link(path.front()).src, topo.host(a));
      EXPECT_EQ(topo.link(path.back()).dst, topo.host(b));
      for (std::size_t i = 0; i + 1 < path.size(); ++i) {
        EXPECT_EQ(topo.link(path[i]).dst, topo.link(path[i + 1]).src);
      }
    }
  }
}

TEST_P(TopologyProperty, PathCountsMatchFormula) {
  const auto p = GetParam();
  net::ClosParams cp;
  cp.hosts = p.hosts;
  cp.nics_per_host = p.rails;
  cp.hosts_per_tor = p.hosts_per_tor;
  cp.pods = p.pods;
  cp.aggs_per_pod = p.aggs;
  cp.spines_per_plane = p.spines;
  net::ClosTopology topo(cp);
  for (int a = 0; a < p.hosts; a += std::max(1, p.hosts / 8)) {
    for (int b = 0; b < p.hosts; b += std::max(1, p.hosts / 8)) {
      if (a == b) continue;
      const auto paths = topo.ecmp_paths(a, b, 0);
      const int tor_a = a / p.hosts_per_tor;
      const int tor_b = b / p.hosts_per_tor;
      if (tor_a == tor_b) {
        EXPECT_EQ(paths.size(), 1u);
      } else if (cp.pod_of_tor_index(tor_a) == cp.pod_of_tor_index(tor_b)) {
        EXPECT_EQ(paths.size(), static_cast<std::size_t>(p.aggs));
      } else {
        EXPECT_EQ(paths.size(), static_cast<std::size_t>(p.aggs * p.spines));
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Grid, TopologyProperty,
    ::testing::Values(TopoCase{16, 1, 4, 2, 2, 2}, TopoCase{32, 2, 8, 2, 2, 2},
                      TopoCase{64, 4, 8, 4, 4, 2},
                      TopoCase{128, 8, 16, 2, 4, 4}),
    [](const auto& info) {
      return "h" + std::to_string(info.param.hosts) + "r" +
             std::to_string(info.param.rails) + "p" +
             std::to_string(info.param.pods);
    });

// ===================================================== flow sim sweep

class FlowSimProperty : public ::testing::TestWithParam<int> {};

TEST_P(FlowSimProperty, MakespanBoundedByBisectionAndLineRate) {
  const int hosts = GetParam();
  net::ClosParams p;
  p.hosts = hosts;
  p.nics_per_host = 1;
  p.hosts_per_tor = 4;
  p.pods = std::max(1, hosts / 16);
  p.aggs_per_pod = 2;
  p.spines_per_plane = 2;
  net::ClosTopology topo(p);
  Rng rng(7);
  auto flows = net::permutation_traffic(topo, rng);
  net::EcmpRouter router(topo);
  net::FlowSim sim(topo);
  const Bytes size = 256_MiB;
  int added = 0;
  for (const auto& f : flows) {
    auto path = router.route(f);
    if (path.empty()) continue;
    sim.add_flow(path, size);
    ++added;
  }
  ASSERT_GT(added, 0);
  sim.run();
  // Lower bound: a flow cannot beat its own line rate.
  const TimeNs line_rate_time = seconds(static_cast<double>(size) / p.nic_bw);
  for (std::size_t i = 0; i < sim.flow_count(); ++i) {
    EXPECT_GE(sim.result(static_cast<int>(i)).duration() + 1000,
              line_rate_time);
  }
  // Upper bound: total bytes over the slowest single link.
  EXPECT_LE(sim.makespan(),
            seconds(static_cast<double>(size) * added / p.nic_bw));
}

INSTANTIATE_TEST_SUITE_P(Hosts, FlowSimProperty,
                         ::testing::Values(8, 16, 32),
                         [](const auto& info) {
                           return "hosts" + std::to_string(info.param);
                         });

// ===================================================== mapping sweep

struct MappingCase {
  int tp, pp, dp;
};

class MappingProperty : public ::testing::TestWithParam<MappingCase> {};

TEST_P(MappingProperty, RoundTripAndGroupPartitions) {
  const auto [tp, pp, dp] = GetParam();
  parallel::ParallelConfig cfg{.tp = tp, .pp = pp, .dp = dp};
  std::map<int, int> tp_seen, dp_seen, pp_seen;
  for (int r = 0; r < cfg.world(); ++r) {
    EXPECT_EQ(parallel::rank_of(parallel::coord_of(r, cfg), cfg), r);
    for (int member : parallel::tp_group(r, cfg)) ++tp_seen[member];
    for (int member : parallel::dp_group(r, cfg)) ++dp_seen[member];
    for (int member : parallel::pp_group(r, cfg)) ++pp_seen[member];
  }
  // Every rank appears in exactly group-size many membership lists of each
  // kind (once per member's enumeration).
  for (int r = 0; r < cfg.world(); ++r) {
    EXPECT_EQ(tp_seen[r], tp);
    EXPECT_EQ(dp_seen[r], dp);
    EXPECT_EQ(pp_seen[r], pp);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Grid, MappingProperty,
    ::testing::Values(MappingCase{1, 1, 1}, MappingCase{8, 1, 1},
                      MappingCase{2, 3, 4}, MappingCase{8, 8, 4},
                      MappingCase{4, 2, 8}),
    [](const auto& info) {
      return "tp" + std::to_string(info.param.tp) + "pp" +
             std::to_string(info.param.pp) + "dp" +
             std::to_string(info.param.dp);
    });

// ===================================================== engine sweep

struct EngineCase {
  int gpus, batch;
};

class EngineProperty : public ::testing::TestWithParam<EngineCase> {};

TEST_P(EngineProperty, MegaScaleAlwaysBeatsBaselineAndMfuSane) {
  const auto [gpus, batch] = GetParam();
  engine::JobConfig cfg;
  cfg.model = model::config_175b();
  cfg.par = parallel::ParallelConfig{.tp = 8, .pp = 8, .dp = gpus / 64,
                                     .vpp = 6};
  cfg.global_batch = batch;
  cfg.ops = model::OperatorProfile::megatron_baseline();
  cfg.overlap = engine::OverlapOptions::megatron_lm();
  ASSERT_EQ(engine::validate(cfg), "");
  const auto baseline = engine::simulate_iteration(cfg);

  cfg.model.parallel_block = true;
  cfg.model.attention = model::AttentionKind::kSlidingWindow;
  cfg.model.window = 512;
  cfg.ops = model::OperatorProfile::megascale();
  cfg.overlap = engine::OverlapOptions::megascale();
  const auto megascale = engine::simulate_iteration(cfg);

  EXPECT_GT(baseline.mfu, 0.30);
  EXPECT_LT(baseline.mfu, 0.70);
  EXPECT_GT(megascale.mfu, baseline.mfu);
  EXPECT_LT(megascale.mfu, 0.75);
  EXPECT_LT(megascale.iteration_time, baseline.iteration_time);
}

INSTANTIATE_TEST_SUITE_P(
    Grid, EngineProperty,
    ::testing::Values(EngineCase{64, 64}, EngineCase{128, 128},
                      EngineCase{256, 256}, EngineCase{512, 768},
                      EngineCase{1024, 1024}),
    [](const auto& info) {
      return "g" + std::to_string(info.param.gpus) + "b" +
             std::to_string(info.param.batch);
    });

}  // namespace
}  // namespace ms
