#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "net/ccsim.h"
#include "net/ecmp.h"
#include "net/flap.h"
#include "net/flowsim.h"
#include "net/topology.h"
#include "support/builders.h"

namespace ms::net {
namespace {

using testsupport::small_clos_params;

// ------------------------------------------------------------- topology

TEST(Topology, NodeCounts) {
  ClosTopology topo(small_clos_params());
  const auto& p = topo.params();
  EXPECT_EQ(p.tors_per_rail(), 4);
  EXPECT_EQ(p.tor_count(), 8);
  EXPECT_EQ(p.spine_count(), 4);
  int hosts = 0, tors = 0, aggs = 0, spines = 0;
  for (const auto& n : topo.nodes()) {
    switch (n.kind) {
      case NodeKind::kHost: ++hosts; break;
      case NodeKind::kTor: ++tors; break;
      case NodeKind::kAgg: ++aggs; break;
      case NodeKind::kSpine: ++spines; break;
    }
  }
  EXPECT_EQ(hosts, 32);
  EXPECT_EQ(tors, 8);
  EXPECT_EQ(aggs, 4);
  EXPECT_EQ(spines, 4);
}

TEST(Topology, SameTorPathIsTwoHops) {
  ClosTopology topo(small_clos_params());
  auto paths = topo.ecmp_paths(0, 1, 0);  // hosts 0,1 share ToR (8 per ToR)
  ASSERT_EQ(paths.size(), 1u);
  EXPECT_EQ(paths[0].size(), 2u);
}

TEST(Topology, SamePodPathCountEqualsAggs) {
  ClosTopology topo(small_clos_params());
  // ToR index = host/8. Host 0 -> ToR 0 (pod 0); host 16 -> ToR 2 (pod 0).
  auto paths = topo.ecmp_paths(0, 16, 0);
  EXPECT_EQ(paths.size(), 2u);  // aggs_per_pod
  for (const auto& p : paths) EXPECT_EQ(p.size(), 4u);
}

TEST(Topology, CrossPodPathCountEqualsSpines) {
  ClosTopology topo(small_clos_params());
  // Host 0 -> ToR 0 (pod 0); host 8 -> ToR 1 (pod 1).
  auto paths = topo.ecmp_paths(0, 8, 0);
  EXPECT_EQ(paths.size(), 4u);  // spine_count
  for (const auto& p : paths) EXPECT_EQ(p.size(), 6u);
}

TEST(Topology, PathLinksAreConnected) {
  ClosTopology topo(small_clos_params());
  for (const auto& path : topo.ecmp_paths(0, 8, 1)) {
    for (std::size_t i = 0; i + 1 < path.size(); ++i) {
      EXPECT_EQ(topo.link(path[i]).dst, topo.link(path[i + 1]).src);
    }
    EXPECT_EQ(topo.link(path.front()).src, topo.host(0));
    EXPECT_EQ(topo.link(path.back()).dst, topo.host(8));
  }
}

TEST(Topology, PathsStayOnRail) {
  ClosTopology topo(small_clos_params());
  for (int rail = 0; rail < 2; ++rail) {
    for (const auto& path : topo.ecmp_paths(0, 20, rail)) {
      // First hop must land on a ToR of this rail.
      const auto& first = topo.link(path.front());
      EXPECT_EQ(topo.node(first.dst).rail, rail);
    }
  }
}

TEST(Topology, SelfPathsEmpty) {
  ClosTopology topo(small_clos_params());
  EXPECT_TRUE(topo.ecmp_paths(3, 3, 0).empty());
  EXPECT_EQ(topo.hop_count(3, 3, 0), 0);
}

TEST(Topology, SplitDownlinkDoublesUplinkCapacity) {
  auto p = small_clos_params();
  p.split_downlink_ports = true;
  ClosTopology tuned(p);
  p.split_downlink_ports = false;
  ClosTopology untuned(p);
  // Find a ToR->Agg link in each and compare capacities.
  auto uplink_cap = [](const ClosTopology& t) -> Bandwidth {
    for (const auto& l : t.links()) {
      if (t.node(l.src).kind == NodeKind::kTor &&
          t.node(l.dst).kind == NodeKind::kAgg) {
        return l.capacity;
      }
    }
    return 0;
  };
  EXPECT_DOUBLE_EQ(uplink_cap(tuned), gbps(400.0));
  EXPECT_DOUBLE_EQ(uplink_cap(untuned), gbps(200.0));
}

TEST(Topology, BisectionBandwidthPositive) {
  ClosTopology topo(small_clos_params());
  // 4 pods*aggs * spines... : aggs(4) x spines_per_plane(2) links at 400G.
  EXPECT_DOUBLE_EQ(topo.bisection_bandwidth(), 8 * gbps(400.0));
}

// ----------------------------------------------------------------- ecmp

TEST(Ecmp, RouteDeterministic) {
  ClosTopology topo(small_clos_params());
  EcmpRouter router(topo);
  FlowSpec f{.src_host = 0, .dst_host = 8, .rail = 0, .flow_label = 42};
  EXPECT_EQ(router.route(f), router.route(f));
}

TEST(Ecmp, DifferentLabelsSpreadOverPaths) {
  ClosTopology topo(small_clos_params());
  EcmpRouter router(topo);
  std::set<Path> distinct;
  for (std::uint64_t label = 0; label < 64; ++label) {
    distinct.insert(
        router.route({.src_host = 0, .dst_host = 8, .rail = 0, .flow_label = label}));
  }
  EXPECT_GT(distinct.size(), 1u);
  EXPECT_LE(distinct.size(), 4u);  // at most spine_count paths exist
}

TEST(Ecmp, SingleFlowGetsLineRate) {
  ClosTopology topo(small_clos_params());
  std::vector<FlowSpec> flows{{.src_host = 0, .dst_host = 8, .rail = 0}};
  auto r = analyze_ecmp(topo, flows);
  EXPECT_DOUBLE_EQ(r.mean_throughput_frac, 1.0);
  EXPECT_DOUBLE_EQ(r.conflict_fraction, 0.0);
}

TEST(Ecmp, PortSplitReducesConflicts) {
  auto p = small_clos_params();
  p.hosts = 64;
  p.hosts_per_tor = 8;
  Rng rng(1);

  p.split_downlink_ports = false;
  ClosTopology untuned(p);
  p.split_downlink_ports = true;
  ClosTopology tuned(p);

  double untuned_conflicts = 0, tuned_conflicts = 0;
  for (int trial = 0; trial < 20; ++trial) {
    Rng trial_rng(static_cast<std::uint64_t>(trial) + 100);
    auto flows = permutation_traffic(untuned, trial_rng);
    untuned_conflicts += analyze_ecmp(untuned, flows).conflict_fraction;
    tuned_conflicts += analyze_ecmp(tuned, flows).conflict_fraction;
  }
  EXPECT_LT(tuned_conflicts, untuned_conflicts);
}

TEST(Ecmp, PackedRingStaysUnderTor) {
  auto p = small_clos_params();
  Rng rng(3);
  ClosTopology topo(p);
  auto flows = ring_traffic(topo, 8, /*pack_under_tor=*/true, rng);
  auto r = analyze_ecmp(topo, flows);
  // All hops are host->tor->host: 2 hops, no uplink traffic, no conflicts.
  EXPECT_DOUBLE_EQ(r.mean_hops, 2.0);
  EXPECT_DOUBLE_EQ(r.conflict_fraction, 0.0);
}

TEST(Ecmp, SpreadRingUsesMoreHops) {
  auto p = small_clos_params();
  Rng rng(4);
  ClosTopology topo(p);
  auto spread = ring_traffic(topo, 8, /*pack_under_tor=*/false, rng);
  auto r = analyze_ecmp(topo, spread);
  EXPECT_GT(r.mean_hops, 2.0);
}

// -------------------------------------------------------------- flowsim

TEST(FlowSim, SingleFlowAtLineRate) {
  ClosTopology topo(small_clos_params());
  FlowSim sim(topo);
  // 25 GB over a 25 GB/s NIC (200 Gb/s) => 1 s.
  auto paths = topo.ecmp_paths(0, 8, 0);
  const int f = sim.add_flow(paths[0], static_cast<Bytes>(25e9));
  sim.run();
  EXPECT_NEAR(to_seconds(sim.result(f).finish), 1.0, 1e-6);
}

TEST(FlowSim, TwoFlowsShareLink) {
  ClosTopology topo(small_clos_params());
  FlowSim sim(topo);
  auto paths = topo.ecmp_paths(0, 8, 0);
  // Same path: both flows share the 25 GB/s NIC link => each gets half.
  sim.add_flow(paths[0], static_cast<Bytes>(12.5e9));
  sim.add_flow(paths[0], static_cast<Bytes>(12.5e9));
  sim.run();
  EXPECT_NEAR(to_seconds(sim.result(0).finish), 1.0, 1e-6);
  EXPECT_NEAR(to_seconds(sim.result(1).finish), 1.0, 1e-6);
}

TEST(FlowSim, ShortFlowFinishesThenLongSpeedsUp) {
  ClosTopology topo(small_clos_params());
  FlowSim sim(topo);
  auto paths = topo.ecmp_paths(0, 8, 0);
  // Long flow: 25 GB; short flow: 6.25 GB. Shared until short finishes at
  // t=0.5s (rate 12.5GB/s each); then long runs at 25 GB/s:
  // remaining 18.75GB -> 0.75s more. Total 1.25s.
  const int lng = sim.add_flow(paths[0], static_cast<Bytes>(25e9));
  const int sht = sim.add_flow(paths[0], static_cast<Bytes>(6.25e9));
  sim.run();
  EXPECT_NEAR(to_seconds(sim.result(sht).finish), 0.5, 1e-6);
  EXPECT_NEAR(to_seconds(sim.result(lng).finish), 1.25, 1e-6);
}

TEST(FlowSim, LateArrivalHonored) {
  ClosTopology topo(small_clos_params());
  FlowSim sim(topo);
  auto paths = topo.ecmp_paths(0, 8, 0);
  const int f = sim.add_flow(paths[0], static_cast<Bytes>(25e9), seconds(2.0));
  sim.run();
  EXPECT_NEAR(to_seconds(sim.result(f).finish), 3.0, 1e-6);
  EXPECT_NEAR(to_seconds(sim.result(f).duration()), 1.0, 1e-6);
}

TEST(FlowSim, DisjointFlowsDoNotInterfere) {
  auto p = small_clos_params();
  ClosTopology topo(p);
  FlowSim sim(topo);
  // Rails are disjoint: same host pair on different rails shares nothing.
  auto path0 = topo.ecmp_paths(0, 1, 0)[0];
  auto path1 = topo.ecmp_paths(0, 1, 1)[0];
  sim.add_flow(path0, static_cast<Bytes>(25e9));
  sim.add_flow(path1, static_cast<Bytes>(25e9));
  sim.run();
  EXPECT_NEAR(to_seconds(sim.result(0).finish), 1.0, 1e-6);
  EXPECT_NEAR(to_seconds(sim.result(1).finish), 1.0, 1e-6);
}

TEST(FlowSim, MatchesEqualShareOnSymmetricLoad) {
  // For symmetric single-bottleneck loads, max-min equals equal-share, so
  // the ECMP analyzer's approximation should agree with the simulator.
  ClosTopology topo(small_clos_params());
  FlowSim sim(topo);
  auto paths = topo.ecmp_paths(0, 8, 0);
  for (int i = 0; i < 4; ++i) {
    sim.add_flow(paths[0], static_cast<Bytes>(25e9));
  }
  sim.run();
  for (int i = 0; i < 4; ++i) {
    EXPECT_NEAR(to_seconds(sim.result(i).finish), 4.0, 1e-6);
  }
}

TEST(FlowSim, EmptyPathRejected) {
  ClosTopology topo(small_clos_params());
  FlowSim sim(topo);
  EXPECT_THROW(sim.add_flow({}, 100), std::invalid_argument);
}

// ----------------------------------------------------------------- ccsim

CcSimParams cc_params() {
  CcSimParams p;
  p.senders = 8;
  p.duration_s = 0.03;
  return p;
}

TEST(CcSim, AllAlgorithmsAchieveReasonableUtilization) {
  const auto p = cc_params();
  for (auto make : {std::function<std::unique_ptr<CcAlgorithm>()>(
                        [] { return std::make_unique<Dcqcn>(); }),
                    std::function<std::unique_ptr<CcAlgorithm>()>(
                        [] { return std::make_unique<Swift>(); }),
                    std::function<std::unique_ptr<CcAlgorithm>()>(
                        [] { return std::make_unique<MegaScaleCc>(); })}) {
    auto r = run_cc_sim(p, make);
    EXPECT_GT(r.utilization, 0.5) << r.algorithm;
    EXPECT_LE(r.utilization, 1.0 + 1e-9) << r.algorithm;
  }
}

TEST(CcSim, DcqcnTriggersPfcUnderIncast) {
  auto p = cc_params();
  p.senders = 32;  // heavy incast
  auto r = run_cc_sim(p, [] { return std::make_unique<Dcqcn>(); });
  EXPECT_GT(r.pfc_pause_events, 0);
}

TEST(CcSim, HybridAvoidsPfcAndKeepsThroughput) {
  auto p = cc_params();
  p.senders = 32;
  auto dcqcn = run_cc_sim(p, [] { return std::make_unique<Dcqcn>(); });
  auto hybrid = run_cc_sim(p, [] { return std::make_unique<MegaScaleCc>(); });
  EXPECT_LT(hybrid.pfc_pause_fraction, dcqcn.pfc_pause_fraction);
  EXPECT_LT(hybrid.mean_queue_bytes, dcqcn.mean_queue_bytes);
  EXPECT_GT(hybrid.utilization, 0.85);
}

TEST(CcSim, HybridQueueLowerThanDcqcn) {
  auto p = cc_params();
  p.senders = 16;
  auto dcqcn = run_cc_sim(p, [] { return std::make_unique<Dcqcn>(); });
  auto hybrid = run_cc_sim(p, [] { return std::make_unique<MegaScaleCc>(); });
  EXPECT_LT(hybrid.p99_queue_bytes, dcqcn.p99_queue_bytes);
}

TEST(CcSim, FairnessNearOne) {
  auto p = cc_params();
  for (auto make : {std::function<std::unique_ptr<CcAlgorithm>()>(
                        [] { return std::make_unique<Swift>(); }),
                    std::function<std::unique_ptr<CcAlgorithm>()>(
                        [] { return std::make_unique<MegaScaleCc>(); })}) {
    auto r = run_cc_sim(p, make);
    EXPECT_GT(r.fairness, 0.95) << r.algorithm;
  }
}

// ------------------------------------------------- ccsim threshold edges

/// Constant-rate controller: removes the control loop so the fluid
/// integration is exactly predictable step by step.
class FixedRate : public CcAlgorithm {
 public:
  std::string name() const override { return "FixedRate"; }
  double on_feedback(double current_rate, const CcFeedback&) override {
    return current_rate;
  }
};

/// One sender at 2 B per step into a 1 B per step egress: the queue grows
/// by exactly 1 byte per step (dt = 0.25 s and byte-scale rates keep every
/// intermediate value exactly representable, so the PFC thresholds are hit
/// *exactly*, not approximately).
CcSimParams staircase_params(int steps) {
  CcSimParams p;
  p.senders = 1;
  p.line_rate = 8.0;
  p.bottleneck_rate = 4.0;
  p.step_s = 0.25;
  p.duration_s = 0.25 * static_cast<double>(steps);
  p.base_rtt_s = 0.25;
  p.ecn_kmin = 1000.0;  // ECN never fires at byte-scale queues
  p.ecn_kmax = 2000.0;
  p.pfc_pause = 3.0;
  p.pfc_resume = 2.0;
  return p;
}

TEST(CcSim, QueueExactlyAtPauseThresholdDoesNotPause) {
  // Queue after steps 0,1,2 is 1,2,3 bytes: it ends exactly ON the pause
  // threshold, and the latch requires strictly above.
  auto r = run_cc_sim(staircase_params(3),
                      [] { return std::make_unique<FixedRate>(); });
  EXPECT_EQ(r.pfc_pause_events, 0);
  EXPECT_DOUBLE_EQ(r.pfc_pause_fraction, 0.0);
}

TEST(CcSim, QueueExactlyAtResumeThresholdStaysPaused) {
  // Queue walks 1,2,3,4 (pause latches strictly above 3), then drains
  // 3,2,1 while paused. At exactly 2 bytes the latch must HOLD (resume is
  // strictly below), so the pause spans three steps of the eight:
  // fraction 3/8 exactly. A <=-resume bug would yield 2/8, a >=-pause bug
  // would latch one step early — either breaks the equality.
  auto r = run_cc_sim(staircase_params(8),
                      [] { return std::make_unique<FixedRate>(); });
  EXPECT_EQ(r.pfc_pause_events, 1);
  EXPECT_DOUBLE_EQ(r.pfc_pause_fraction, 0.375);
  EXPECT_DOUBLE_EQ(r.utilization, 1.0);  // egress never idles
}

TEST(CcSim, DegenerateEcnBandIsFinite) {
  // kmin == kmax collapses the RED ramp to a step function; the marking
  // math must not divide by the zero-width band.
  auto p = cc_params();
  p.senders = 24;
  p.ecn_kmin = 800e3;
  p.ecn_kmax = 800e3;
  auto r = run_cc_sim(p, [] { return std::make_unique<Dcqcn>(); });
  EXPECT_TRUE(std::isfinite(r.utilization));
  EXPECT_TRUE(std::isfinite(r.mean_queue_bytes));
  EXPECT_GT(r.utilization, 0.0);
  EXPECT_LE(r.utilization, 1.0 + 1e-9);
}

TEST(CcSim, ZeroRttIsFinite) {
  // base_rtt_s == 0 degenerates the feedback delay to one step and the
  // packet count to its floor of one; nothing may divide by the RTT.
  auto p = cc_params();
  p.base_rtt_s = 0.0;
  for (auto make : {std::function<std::unique_ptr<CcAlgorithm>()>(
                        [] { return std::make_unique<Dcqcn>(); }),
                    std::function<std::unique_ptr<CcAlgorithm>()>(
                        [] { return std::make_unique<MegaScaleCc>(); })}) {
    auto r = run_cc_sim(p, make);
    EXPECT_TRUE(std::isfinite(r.utilization)) << r.algorithm;
    EXPECT_GT(r.utilization, 0.0) << r.algorithm;
    EXPECT_LE(r.utilization, 1.0 + 1e-9) << r.algorithm;
  }
}

// ------------------------------------------------------------------ flap

TEST(Flap, NoFlapCompletesAtLineRate) {
  RetransConfig cfg;
  auto out = simulate_transfer_with_flaps(static_cast<Bytes>(25e9), 25e9, {}, cfg);
  EXPECT_TRUE(out.completed);
  EXPECT_FALSE(out.nccl_error);
  EXPECT_NEAR(to_seconds(out.finish_time), 1.0, 1e-6);
  EXPECT_EQ(out.total_stall, 0);
}

TEST(Flap, ShortFlapRecoversWithAdaptiveRetrans) {
  RetransConfig cfg;
  cfg.adaptive = true;
  cfg.nccl_timeout = seconds(30.0);
  std::vector<FlapEvent> flaps{{.down_at = seconds(0.5), .down_duration = seconds(2.0)}};
  auto out = simulate_transfer_with_flaps(static_cast<Bytes>(25e9), 25e9, flaps, cfg);
  EXPECT_TRUE(out.completed);
  EXPECT_FALSE(out.nccl_error);
  // Stall is roughly the flap duration plus one probe interval.
  EXPECT_GE(out.total_stall, seconds(2.0));
  EXPECT_LE(out.total_stall, seconds(2.5));
}

TEST(Flap, AdaptiveRecoversFasterThanExponentialBackoff) {
  std::vector<FlapEvent> flaps{{.down_at = seconds(0.1), .down_duration = seconds(2.93)}};
  RetransConfig adaptive;
  adaptive.adaptive = true;
  RetransConfig backoff;
  backoff.adaptive = false;
  backoff.max_retries = 20;
  auto a = simulate_transfer_with_flaps(static_cast<Bytes>(25e9), 25e9, flaps, adaptive);
  auto b = simulate_transfer_with_flaps(static_cast<Bytes>(25e9), 25e9, flaps, backoff);
  ASSERT_TRUE(a.completed);
  ASSERT_TRUE(b.completed);
  EXPECT_LT(a.total_stall, b.total_stall);
}

TEST(Flap, DefaultTimeoutTooShortCausesNcclError) {
  // The paper's first lesson: with a small NCCL timeout, a multi-second
  // flap kills the job even though the link comes back.
  RetransConfig cfg;
  cfg.nccl_timeout = seconds(1.0);
  cfg.adaptive = true;
  std::vector<FlapEvent> flaps{{.down_at = seconds(0.5), .down_duration = seconds(5.0)}};
  auto out = simulate_transfer_with_flaps(static_cast<Bytes>(25e9), 25e9, flaps, cfg);
  EXPECT_FALSE(out.completed);
  EXPECT_TRUE(out.nccl_error);
  EXPECT_STREQ(out.error_kind, "nccl-timeout");
}

TEST(Flap, RetriesExhaustedReportsError) {
  RetransConfig cfg;
  cfg.adaptive = true;
  cfg.adaptive_interval = milliseconds(10.0);
  cfg.max_retries = 3;
  cfg.nccl_timeout = seconds(600.0);
  std::vector<FlapEvent> flaps{{.down_at = seconds(0.5), .down_duration = seconds(10.0)}};
  auto out = simulate_transfer_with_flaps(static_cast<Bytes>(25e9), 25e9, flaps, cfg);
  EXPECT_FALSE(out.completed);
  EXPECT_STREQ(out.error_kind, "retries-exhausted");
}

TEST(Flap, MultipleFlapsAccumulateStall) {
  RetransConfig cfg;
  cfg.adaptive = true;
  std::vector<FlapEvent> flaps{
      {.down_at = seconds(0.2), .down_duration = seconds(1.0)},
      {.down_at = seconds(1.5), .down_duration = seconds(1.0)}};
  auto out = simulate_transfer_with_flaps(static_cast<Bytes>(25e9), 25e9, flaps, cfg);
  ASSERT_TRUE(out.completed);
  EXPECT_GE(out.total_stall, seconds(2.0));
}

}  // namespace
}  // namespace ms::net
