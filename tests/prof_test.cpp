// Self-profiler tests: src/prof/profiler.cpp aggregation cells,
// src/prof/report.cpp artifacts, src/prof/msprof.cpp workloads + CLI, and
// the src/core/wallclock.cpp monotonic clock they all sample.
#include <gtest/gtest.h>

#include <algorithm>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "core/wallclock.h"
#include "prof/msprof.h"
#include "prof/profiler.h"
#include "prof/report.h"
#include "prof/telemetry_bridge.h"
#include "sim/engine.h"
#include "telemetry/metrics.h"

namespace ms::prof {
namespace {

/// Every test starts from a clean, disabled profiler (the profiler is a
/// process-wide singleton; tests run one per process under ctest, but the
/// guard also makes them order-independent inside one binary).
class ProfTest : public ::testing::Test {
 protected:
  void SetUp() override {
    set_enabled(false);
    set_tracing(false);
    reset();
  }
  void TearDown() override {
    set_enabled(false);
    set_tracing(false);
    reset();
  }
};

std::string temp_path(const std::string& name) {
  return ::testing::TempDir() + name;
}

void write_text(const std::string& path, const std::string& text) {
  std::ofstream out(path);
  out << text;
}

// ------------------------------------------------------------- wallclock

TEST(Wallclock, MonotonicNonDecreasing) {
  const WallNs a = wallclock_ns();
  const WallNs b = wallclock_ns();
  EXPECT_LE(a, b);
  EXPECT_GT(a, 0);
}

TEST(Wallclock, AdvancesAcrossASleep) {
  const WallNs a = wallclock_ns();
  std::this_thread::sleep_for(std::chrono::milliseconds(2));
  EXPECT_GE(wallclock_ns() - a, 1'000'000);
}

TEST(Wallclock, SecondsConversion) {
  EXPECT_DOUBLE_EQ(wall_to_seconds(1'500'000'000), 1.5);
  EXPECT_DOUBLE_EQ(wall_to_seconds(0), 0.0);
}

// -------------------------------------------------------------- profiler

TEST_F(ProfTest, RegisterScopeIsIdempotent) {
  const ScopeId a = register_scope("test.alpha");
  const ScopeId b = register_scope("test.alpha");
  const ScopeId c = register_scope("test.beta");
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);
  EXPECT_EQ(scope_name(a), "test.alpha");
  EXPECT_EQ(scope_name(c), "test.beta");
}

// The macro-free ScopeTimer path works in every build config; the
// MS_PROF_SCOPE macro itself is exercised (or proven compiled-out) below.
TEST_F(ProfTest, ScopesAggregateCounts) {
  set_enabled(true);
  const ScopeId id = register_scope("test.loop_body");
  for (int i = 0; i < 100; ++i) {
    ScopeTimer t(id);
  }
  const auto snap = snapshot();
  bool found = false;
  for (const auto& s : snap) {
    if (s.name != "test.loop_body") continue;
    found = true;
    EXPECT_EQ(s.count, 100u);
    EXPECT_GE(s.max_ns, s.min_ns);
    EXPECT_GE(s.total_ns, s.self_ns);
    EXPECT_EQ(s.hist_ns.total(), 100u);
  }
  EXPECT_TRUE(found);
}

TEST_F(ProfTest, NestedScopesSplitSelfTime) {
  set_enabled(true);
  const ScopeId outer = register_scope("test.outer");
  const ScopeId inner = register_scope("test.inner");
  {
    ScopeTimer t_outer(outer);
    for (int i = 0; i < 50; ++i) {
      ScopeTimer t_inner(inner);
    }
  }
  std::uint64_t outer_total = 0, outer_self = 0, inner_total = 0;
  for (const auto& s : snapshot()) {
    if (s.name == "test.outer") {
      outer_total = s.total_ns;
      outer_self = s.self_ns;
    }
    if (s.name == "test.inner") inner_total = s.total_ns;
  }
  // The inner scopes' time is charged to outer's children, not its self.
  EXPECT_LT(outer_self, outer_total);
  EXPECT_LE(inner_total, outer_total);
}

TEST_F(ProfTest, DisabledProfilerCollectsNothing) {
  ASSERT_FALSE(enabled());
  const ScopeId id = register_scope("test.dormant");
  for (int i = 0; i < 10; ++i) {
    ScopeTimer t(id);
  }
  for (const auto& s : snapshot()) EXPECT_EQ(s.count, 0u) << s.name;
  count_alloc(5);
  EXPECT_EQ(alloc_count(), 0u);
}

#if defined(MS_PROF_ENABLED) && MS_PROF_ENABLED
TEST_F(ProfTest, ScopeMacroRecordsWhenCompiledIn) {
  set_enabled(true);
  for (int i = 0; i < 3; ++i) {
    MS_PROF_SCOPE("test.macro");
  }
  MS_PROF_COUNT_ALLOC(2);
  bool found = false;
  for (const auto& s : snapshot()) {
    if (s.name == "test.macro") {
      found = true;
      EXPECT_EQ(s.count, 3u);
    }
  }
  EXPECT_TRUE(found);
  EXPECT_EQ(alloc_count(), 2u);
}
#else
TEST_F(ProfTest, ScopeMacroCompilesToNothingWhenOff) {
  set_enabled(true);
  for (int i = 0; i < 3; ++i) {
    MS_PROF_SCOPE("test.macro");
  }
  MS_PROF_COUNT_ALLOC(2);
  for (const auto& s : snapshot()) EXPECT_EQ(s.count, 0u) << s.name;
  EXPECT_EQ(alloc_count(), 0u);
}
#endif

TEST_F(ProfTest, AllocCounterAccumulatesWhenEnabled) {
  set_enabled(true);
  count_alloc();
  count_alloc(4);
  EXPECT_EQ(alloc_count(), 5u);
  reset();
  EXPECT_EQ(alloc_count(), 0u);
}

TEST_F(ProfTest, TraceRingRecordsSpans) {
  set_enabled(true);
  set_tracing(true);
  const ScopeId id = register_scope("test.traced");
  {
    ScopeTimer t(id);
  }
  {
    ScopeTimer t(id);
  }
  std::uint64_t dropped = 7;
  const auto events = drain_trace(&dropped);
  EXPECT_EQ(dropped, 0u);
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(scope_name(events[0].id), "test.traced");
  EXPECT_LE(events[0].start, events[1].start);
  // Draining empties the ring.
  EXPECT_TRUE(drain_trace().empty());
}

TEST_F(ProfTest, SnapshotMergesThreads) {
  set_enabled(true);
  const ScopeId id = register_scope("test.mt");
  auto body = [id] {
    for (int i = 0; i < 1000; ++i) {
      ScopeTimer t(id);
    }
  };
  std::thread a(body), b(body);
  body();
  a.join();
  b.join();
  for (const auto& s : snapshot()) {
    if (s.name == "test.mt") {
      EXPECT_EQ(s.count, 3000u);
    }
  }
}

// ---------------------------------------------------------------- report

ProfileReport sample_report() {
  ProfileReport r;
  r.workload = "unit";
  r.wall_ns = 1'000'000;
  r.events = 42;
  r.allocs = 7;
  ScopeStats a;
  a.name = "scope.a";
  a.count = 10;
  a.total_ns = 600'000;
  a.self_ns = 500'000;
  a.min_ns = 1'000;
  a.max_ns = 90'000;
  a.p50_ns = 40'000;
  a.p99_ns = 88'000;
  ScopeStats b;
  b.name = "scope.b";
  b.count = 5;
  b.total_ns = 400'000;
  b.self_ns = 400'000;
  r.scopes = {a, b};
  return r;
}

TEST(ProfileReportTest, AttributedFractionSumsSelfTime) {
  const auto r = sample_report();
  EXPECT_DOUBLE_EQ(r.attributed_fraction(), 0.9);
  EXPECT_DOUBLE_EQ(r.events_per_sec(), 42'000.0);
}

TEST(ProfileReportTest, DigestIgnoresWallClockValues) {
  const auto base = sample_report();
  auto timing_shift = base;
  timing_shift.wall_ns *= 3;
  timing_shift.scopes[0].self_ns = 1;
  timing_shift.scopes[0].total_ns = 2;
  timing_shift.scopes[1].p99_ns = 999.0;
  EXPECT_EQ(base.digest(), timing_shift.digest());

  // Rank order must not matter either: digest sorts by name.
  auto reordered = base;
  std::swap(reordered.scopes[0], reordered.scopes[1]);
  EXPECT_EQ(base.digest(), reordered.digest());

  // But structure does: a different sample count is a real change.
  auto recount = base;
  recount.scopes[0].count += 1;
  EXPECT_NE(base.digest(), recount.digest());
  auto renamed = base;
  renamed.scopes[0].name = "scope.c";
  EXPECT_NE(base.digest(), renamed.digest());
}

TEST(ProfileReportTest, JsonlRoundTrips) {
  const auto r = sample_report();
  ProfileReport parsed;
  std::string error;
  ASSERT_TRUE(parse_jsonl(r.to_jsonl(), parsed, &error)) << error;
  EXPECT_EQ(parsed.workload, "unit");
  EXPECT_EQ(parsed.wall_ns, r.wall_ns);
  EXPECT_EQ(parsed.events, r.events);
  EXPECT_EQ(parsed.allocs, r.allocs);
  ASSERT_EQ(parsed.scopes.size(), 2u);
  EXPECT_EQ(parsed.scopes[0].name, "scope.a");
  EXPECT_EQ(parsed.scopes[0].count, 10u);
  EXPECT_EQ(parsed.scopes[0].total_ns, 600'000u);
  EXPECT_DOUBLE_EQ(parsed.scopes[0].p99_ns, 88'000.0);
  EXPECT_EQ(parsed.digest(), r.digest());
}

TEST(ProfileReportTest, ParseRejectsMalformedInput) {
  ProfileReport out;
  std::string error;
  EXPECT_FALSE(parse_jsonl("{\"kind\":\"scope\",\"name\":\"x\"}\n", out,
                           &error));
  EXPECT_NE(error.find("header"), std::string::npos);
  EXPECT_FALSE(parse_jsonl("not json\n", out, &error));
  EXPECT_FALSE(
      parse_jsonl("{\"kind\":\"mystery\"}\n", out, &error));
}

TEST(ProfileReportTest, RenderShowsRankedScopes) {
  const auto text = sample_report().render();
  EXPECT_NE(text.find("scope.a"), std::string::npos);
  EXPECT_NE(text.find("90.0% attributed"), std::string::npos);
  // top_k truncates.
  const auto one = sample_report().render(1);
  EXPECT_NE(one.find("scope.a"), std::string::npos);
  EXPECT_EQ(one.find("| scope.b"), std::string::npos);
}

TEST(ProfileReportTest, DiffMarksNewAndGoneScopes) {
  auto base = sample_report();
  auto cand = sample_report();
  cand.scopes[0].name = "scope.fresh";
  const auto text = render_diff(base, cand);
  EXPECT_NE(text.find("scope.fresh"), std::string::npos);
  EXPECT_NE(text.find("new"), std::string::npos);
  EXPECT_NE(text.find("gone"), std::string::npos);
}

TEST_F(ProfTest, ChromeTraceContainsSpans) {
  set_enabled(true);
  set_tracing(true);
  const ScopeId id = register_scope("test.span");
  {
    ScopeTimer t(id);
  }
  const auto events = drain_trace();
  const auto json = to_chrome_trace(events, 3);
  EXPECT_NE(json.find("megascale-sim (self)"), std::string::npos);
  EXPECT_NE(json.find("\"test.span\""), std::string::npos);
  EXPECT_NE(json.find("\"dropped_events\":3"), std::string::npos);
  EXPECT_NE(json.find("sim-thread-"), std::string::npos);
}

TEST_F(ProfTest, CaptureRanksBySelfTime) {
  set_enabled(true);
  const ScopeId cheap = register_scope("test.cheap");
  const ScopeId costly = register_scope("test.costly");
  {
    ScopeTimer t(cheap);
  }
  {
    ScopeTimer t(costly);
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  const auto report = capture("capture_unit", wallclock_ns(), 2);
  ASSERT_GE(report.scopes.size(), 2u);
  EXPECT_EQ(report.scopes.front().name, "test.costly");
  EXPECT_EQ(report.workload, "capture_unit");
}

// ------------------------------------------------------ telemetry bridge

TEST_F(ProfTest, ExportProfilePopulatesRegistry) {
  telemetry::MetricsRegistry registry;
  export_profile(sample_report(), registry);
  const auto snap = registry.snapshot();
  const auto* events = snap.find("prof_events_total");
  ASSERT_NE(events, nullptr);
  EXPECT_DOUBLE_EQ(events->value, 42.0);
  const auto* samples =
      snap.find("prof_scope_samples", {{"scope", "scope.a"}});
  ASSERT_NE(samples, nullptr);
  EXPECT_DOUBLE_EQ(samples->value, 10.0);
}

TEST_F(ProfTest, EngineGaugesExport) {
  sim::Engine eng;
  const auto id = eng.at(10, [] {});
  eng.at(5, [] {});
  eng.cancel(id);
  eng.run();
  telemetry::MetricsRegistry registry;
  export_engine_gauges(eng, registry);
  const auto snap = registry.snapshot();
  const auto* executed = snap.find("engine_events_executed");
  const auto* cancelled = snap.find("engine_events_cancelled");
  const auto* depth = snap.find("engine_queue_depth");
  const auto* peak = snap.find("engine_queue_depth_peak");
  ASSERT_NE(executed, nullptr);
  ASSERT_NE(cancelled, nullptr);
  ASSERT_NE(depth, nullptr);
  ASSERT_NE(peak, nullptr);
  EXPECT_DOUBLE_EQ(executed->value, 1.0);
  EXPECT_DOUBLE_EQ(cancelled->value, 1.0);
  EXPECT_DOUBLE_EQ(depth->value, 0.0);
  EXPECT_DOUBLE_EQ(peak->value, 2.0);
}

TEST_F(ProfTest, ProfileSketchExportsHistograms) {
  set_enabled(true);
  const ScopeId id = register_scope("test.sketched");
  {
    ScopeTimer t(id);
  }
  const auto sketch = profile_sketch();
  EXPECT_FALSE(sketch.empty());
}

// ------------------------------------------------------------- workloads

TEST_F(ProfTest, MicroEngineIsDeterministic) {
  MicroEngineConfig cfg;
  cfg.chains = 2;
  cfg.chain_events = 200;
  cfg.fanout_events = 300;
  cfg.cancel_events = 100;
  const auto a = run_micro_engine(cfg);
  const auto b = run_micro_engine(cfg);
  EXPECT_EQ(a.engine_digest, b.engine_digest);
  EXPECT_EQ(a.events, b.events);
  EXPECT_EQ(a.events, 2u * 200u + 300u + 50u);
  EXPECT_EQ(a.scheduled, 2u * 200u + 300u + 100u);
  EXPECT_EQ(a.cancelled, 50u);
  EXPECT_EQ(a.tombstone_pops, 50u);
  EXPECT_GE(a.peak_queue, 300u);
}

TEST_F(ProfTest, MicroEngineDigestUnchangedByProfiling) {
  MicroEngineConfig cfg;
  cfg.chains = 2;
  cfg.chain_events = 100;
  cfg.fanout_events = 100;
  cfg.cancel_events = 50;
  ASSERT_FALSE(enabled());
  const auto dormant = run_micro_engine(cfg);
  set_enabled(true);
  set_tracing(true);
  const auto profiled = run_micro_engine(cfg);
  EXPECT_EQ(dormant.engine_digest, profiled.engine_digest);
  EXPECT_EQ(dormant.events, profiled.events);
#if defined(MS_PROF_ENABLED) && MS_PROF_ENABLED
  // And the profiled run actually measured something.
  bool saw_pop = false;
  for (const auto& s : snapshot()) {
    if (s.name == "engine.pop" && s.count > 0) saw_pop = true;
  }
  EXPECT_TRUE(saw_pop);
#endif
}

TEST_F(ProfTest, RunWorkloadByName) {
  WorkloadResult result;
  EXPECT_FALSE(run_workload("no_such_workload", result));
  const auto names = workload_names();
  EXPECT_NE(std::find(names.begin(), names.end(), "micro_engine"),
            names.end());
  EXPECT_NE(std::find(names.begin(), names.end(), "fig11_production_run"),
            names.end());
}

// ------------------------------------------------------------ msprof CLI

int run_cli(const std::vector<std::string>& args, std::string* out_text =
                                                      nullptr) {
  std::ostringstream out, err;
  const int rc = msprof_main(args, out, err);
  if (out_text != nullptr) *out_text = out.str() + err.str();
  return rc;
}

TEST_F(ProfTest, CliUsageAndList) {
  std::string text;
  EXPECT_EQ(run_cli({}, &text), 1);
  EXPECT_NE(text.find("msprof run"), std::string::npos);
  EXPECT_EQ(run_cli({"--help"}), 0);
  EXPECT_EQ(run_cli({"bogus"}), 1);
  EXPECT_EQ(run_cli({"list"}, &text), 0);
  EXPECT_NE(text.find("micro_engine"), std::string::npos);
}

TEST_F(ProfTest, CliRunReportDiffPipeline) {
  const std::string json_a = temp_path("prof_a.jsonl");
  const std::string trace = temp_path("prof_trace.json");
  const std::string prom = temp_path("prof.prom");
  std::string text;
  ASSERT_EQ(run_cli({"run", "micro_engine", "--json", json_a, "--trace",
                     trace, "--prom", prom, "--top", "5"},
                    &text),
            0)
      << text;
  EXPECT_NE(text.find("profile: micro_engine"), std::string::npos);
  EXPECT_NE(text.find("profile digest"), std::string::npos);
#if defined(MS_PROF_ENABLED) && MS_PROF_ENABLED
  EXPECT_NE(text.find("engine.pop"), std::string::npos);
#endif

  EXPECT_EQ(run_cli({"report", json_a}, &text), 0);
#if defined(MS_PROF_ENABLED) && MS_PROF_ENABLED
  EXPECT_NE(text.find("micro.fanout"), std::string::npos);
#endif

  EXPECT_EQ(run_cli({"diff", json_a, json_a}, &text), 0);
  EXPECT_NE(text.find("diff: micro_engine -> micro_engine"),
            std::string::npos);

  std::ifstream trace_in(trace);
  std::stringstream trace_text;
  trace_text << trace_in.rdbuf();
  EXPECT_NE(trace_text.str().find("megascale-sim (self)"),
            std::string::npos);
  std::ifstream prom_in(prom);
  std::stringstream prom_text;
  prom_text << prom_in.rdbuf();
  EXPECT_NE(prom_text.str().find("prof_events_total"), std::string::npos);
#if defined(MS_PROF_ENABLED) && MS_PROF_ENABLED
  EXPECT_NE(prom_text.str().find("prof_scope_self_seconds"),
            std::string::npos);
#endif
}

TEST_F(ProfTest, CliRejectsBadInputs) {
  std::string text;
  EXPECT_EQ(run_cli({"run", "no_such_workload"}, &text), 1);
  EXPECT_NE(text.find("unknown workload"), std::string::npos);
  EXPECT_EQ(run_cli({"report", temp_path("missing.jsonl")}, &text), 1);
  const std::string bad = temp_path("bad.jsonl");
  write_text(bad, "definitely not json\n");
  EXPECT_EQ(run_cli({"report", bad}, &text), 1);
  EXPECT_EQ(run_cli({"diff", bad}, &text), 1);
  EXPECT_EQ(run_cli({"overhead", "--workload", "no_such"}, &text), 1);
}

}  // namespace
}  // namespace ms::prof
