// Fabric observatory (src/net/fabric): ring-buffered per-link series,
// passive simulator hooks, flow path attribution, the four anomaly
// detectors and the congestion-origin localization ranking, plus the
// `msdiag fabric` CLI surface. The two load-bearing guarantees pinned
// here: the observatory is strictly passive (simulator results are
// bit-identical with it attached or absent) and fully deterministic
// (same seed => same digest).
#include <gtest/gtest.h>

#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "diag/flight_recorder.h"
#include "net/ccsim.h"
#include "net/ccsim_multi.h"
#include "net/ecmp.h"
#include "net/fabric/detectors.h"
#include "net/fabric/fabric_cli.h"
#include "net/fabric/observatory.h"
#include "net/fabric/series.h"
#include "net/flowsim.h"
#include "net/topology.h"
#include "support/builders.h"

namespace ms::net::fabric {
namespace {

using testsupport::small_clos_params;

// ------------------------------------------------------------ LinkSeries

TEST(LinkSeries, FoldsNotesIntoCadenceBuckets) {
  LinkSeries s(milliseconds(1.0), 8);
  s.note_tx(microseconds(100.0), 500.0);
  s.note_tx(microseconds(900.0), 250.0);  // same bucket: accumulates
  s.note_tx(microseconds(1500.0), 100.0);  // next bucket
  const auto samples = s.samples();
  ASSERT_EQ(samples.size(), 2u);
  EXPECT_EQ(samples[0].bucket, 0);
  EXPECT_DOUBLE_EQ(samples[0].tx_bytes, 750.0);
  EXPECT_EQ(samples[1].bucket, milliseconds(1.0));
  EXPECT_DOUBLE_EQ(samples[1].tx_bytes, 100.0);
}

TEST(LinkSeries, LateNoteFoldsIntoOpenBucketNotAClosedOne) {
  LinkSeries s(milliseconds(1.0), 8);
  s.note_tx(milliseconds(1.0), 10.0);
  s.note_tx(milliseconds(5.0), 20.0);
  // A note stamped before the open bucket (simulator sub-step skew) folds
  // into the open bucket; the closed 1 ms bucket is immutable.
  s.note_tx(milliseconds(1.0), 7.0);
  const auto samples = s.samples();
  ASSERT_EQ(samples.size(), 2u);
  EXPECT_DOUBLE_EQ(samples[0].tx_bytes, 10.0);
  EXPECT_DOUBLE_EQ(samples[1].tx_bytes, 27.0);
}

TEST(LinkSeries, PeaksHoldBucketMaximum) {
  LinkSeries s(milliseconds(1.0), 8);
  s.note_queue(0, 100.0);
  s.note_queue(microseconds(500.0), 40.0);
  s.note_active_flows(0, 3);
  s.note_active_flows(microseconds(700.0), 9);
  s.note_active_flows(microseconds(800.0), 1);
  const auto samples = s.samples();
  ASSERT_EQ(samples.size(), 1u);
  EXPECT_DOUBLE_EQ(samples[0].queue_peak_bytes, 100.0);
  EXPECT_EQ(samples[0].active_flows, 9);
}

TEST(LinkSeries, RingEvictsOldestAndCountsDrops) {
  LinkSeries s(milliseconds(1.0), 4);
  for (int b = 0; b < 8; ++b) {
    s.note_tx(milliseconds(static_cast<double>(b)), 1.0 + b);
  }
  EXPECT_EQ(s.sample_count(), 4u);
  EXPECT_EQ(s.dropped(), 4u);
  const auto samples = s.samples();
  EXPECT_EQ(samples.front().bucket, milliseconds(4.0));  // oldest retained
  EXPECT_EQ(samples.back().bucket, milliseconds(7.0));
  EXPECT_DOUBLE_EQ(s.total_tx_bytes(), 5.0 + 6.0 + 7.0 + 8.0);
}

// --------------------------------------------------- observatory basics

TEST(Observatory, AddLinkDedupesByName) {
  FabricObservatory obs;
  const int a = obs.add_link("tor0->agg0", gbps(400));
  const int b = obs.add_link("tor0->agg0", gbps(400));
  EXPECT_EQ(a, b);
  EXPECT_EQ(obs.link_count(), 1);
  EXPECT_EQ(obs.find_link("tor0->agg0"), a);
  EXPECT_EQ(obs.find_link("no-such-link"), -1);
}

TEST(Observatory, AttachTopologyIndicesMatchLinkIds) {
  ClosTopology topo(small_clos_params());
  FabricObservatory obs;
  obs.attach_topology(topo);
  ASSERT_EQ(obs.link_count(), static_cast<int>(topo.links().size()));
  for (int l = 0; l < obs.link_count(); ++l) {
    EXPECT_NE(obs.link_name(l).find("->"), std::string::npos);
    EXPECT_EQ(obs.link_capacity(l),
              topo.links()[static_cast<std::size_t>(l)].capacity);
  }
}

TEST(Observatory, FlowRecordBudgetDropsAreCountedNotFatal) {
  FabricObservatoryConfig cfg;
  cfg.max_flow_records = 1;
  FabricObservatory obs(cfg);
  obs.add_link("l0", gbps(200));
  const int kept = obs.record_flow_path(1, {0});
  const int dropped = obs.record_flow_path(2, {0});
  EXPECT_EQ(kept, 0);
  EXPECT_EQ(dropped, -1);
  EXPECT_EQ(obs.flow_records_dropped(), 1u);
  obs.attribute_flow_bytes(dropped, 0, 100.0);  // ignored, no crash
  obs.attribute_flow_bytes(kept, 0, 100.0);
  EXPECT_DOUBLE_EQ(obs.flows()[0].bytes, 100.0);
  EXPECT_DOUBLE_EQ(obs.series(0).total_tx_bytes(), 100.0);
}

TEST(Observatory, UtilizationNormalizesByCapacityAndCadence) {
  FabricObservatory obs;  // 1 ms cadence
  const int l = obs.add_link("l0", 1000.0);  // 1000 B/s => 1 B per bucket
  obs.record_tx(l, 0, 0.5);
  const auto samples = obs.samples(l);
  ASSERT_EQ(samples.size(), 1u);
  EXPECT_DOUBLE_EQ(obs.utilization(l, samples[0]), 0.5);
  EXPECT_DOUBLE_EQ(obs.mean_utilization(l), 0.5);
}

// -------------------------------------------- passivity and determinism

TEST(Observatory, CcSimResultsIdenticalWithObservatoryAttached) {
  CcSimParams p;
  p.senders = 16;
  p.duration_s = 0.02;
  const auto bare = run_cc_sim(p, [] { return std::make_unique<Dcqcn>(); });
  FabricObservatory obs;
  p.observatory = &obs;
  const auto observed =
      run_cc_sim(p, [] { return std::make_unique<Dcqcn>(); });
  EXPECT_DOUBLE_EQ(bare.utilization, observed.utilization);
  EXPECT_DOUBLE_EQ(bare.mean_queue_bytes, observed.mean_queue_bytes);
  EXPECT_DOUBLE_EQ(bare.p99_queue_bytes, observed.p99_queue_bytes);
  EXPECT_DOUBLE_EQ(bare.pfc_pause_fraction, observed.pfc_pause_fraction);
  EXPECT_EQ(bare.pfc_pause_events, observed.pfc_pause_events);
  EXPECT_DOUBLE_EQ(bare.fairness, observed.fairness);
  EXPECT_GT(obs.series(0).sample_count(), 0u);
}

TEST(Observatory, MultiCcResultsIdenticalWithObservatoryAttached) {
  auto params = victim_params(16);
  const auto bare =
      run_multi_cc_sim(params, [] { return std::make_unique<Dcqcn>(); });
  FabricObservatory obs;
  params.observatory = &obs;
  const auto observed =
      run_multi_cc_sim(params, [] { return std::make_unique<Dcqcn>(); });
  ASSERT_EQ(bare.flow_goodput_frac.size(), observed.flow_goodput_frac.size());
  for (std::size_t f = 0; f < bare.flow_goodput_frac.size(); ++f) {
    EXPECT_DOUBLE_EQ(bare.flow_goodput_frac[f], observed.flow_goodput_frac[f]);
  }
  for (std::size_t h = 0; h < bare.hop_pause_fraction.size(); ++h) {
    EXPECT_DOUBLE_EQ(bare.hop_pause_fraction[h],
                     observed.hop_pause_fraction[h]);
    EXPECT_EQ(bare.hop_pause_events[h], observed.hop_pause_events[h]);
  }
}

TEST(Observatory, DigestIsDeterministicAcrossRuns) {
  auto digest_of_run = [] {
    auto params = victim_params(12);
    FabricObservatory obs;
    params.observatory = &obs;
    run_multi_cc_sim(params, [] { return std::make_unique<Dcqcn>(); });
    return obs.digest();
  };
  const auto a = digest_of_run();
  const auto b = digest_of_run();
  EXPECT_EQ(a, b);
  EXPECT_NE(a, 0u);
}

// ------------------------------------------------------------ detectors

TEST(Detectors, LocalizationNamesOriginNotPausedVictim) {
  FabricObservatory obs;
  const int victim = obs.add_link("victim-uplink", gbps(200));
  const int origin = obs.add_link("bottleneck", gbps(25));
  FabricDetectorConfig det;
  det.queue_hot_bytes = 1000.0;
  for (int b = 0; b < 5; ++b) {
    const TimeNs t = milliseconds(static_cast<double>(b));
    // Both queues are over threshold, but the victim's egress is fully
    // paused by downstream pause frames — its depth is collateral, not
    // cause. "Deepest queue" would pick it; self-congested time must not.
    obs.record_queue(victim, t, 5000.0);
    obs.record_pause(victim, t, milliseconds(1.0));
    obs.record_queue(origin, t, 2000.0);
  }
  const auto ranked = rank_links(obs, FabricDetectorConfig(det));
  ASSERT_EQ(ranked.size(), 2u);
  EXPECT_EQ(ranked[0].link, origin);
  EXPECT_GT(ranked[0].self_congested, 0);
  EXPECT_EQ(ranked[1].self_congested, 0);
}

TEST(Detectors, StormLocalizesBottleneckHopAndRaisesAlarms) {
  auto params = victim_params(16);
  FabricObservatory obs;
  params.observatory = &obs;
  run_multi_cc_sim(params, [] { return std::make_unique<Dcqcn>(); });
  FabricDetectorConfig det;
  det.queue_hot_bytes = params.pfc_pause;
  const auto report = detect_anomalies(obs, det);
  // The injected bottleneck is the last hop of the victim chain.
  EXPECT_EQ(report.hottest_link_name,
            params.observatory_link_prefix +
                std::to_string(params.hops - 1));
  EXPECT_FALSE(report.alarms.empty());
  EXPECT_GE(report.first_alarm, 0);
  bool saw_storm = false;
  for (const auto& alarm : report.alarms) {
    EXPECT_FALSE(describe(alarm).empty());
    if (alarm.detector == "pfc-storm") saw_storm = true;
  }
  EXPECT_TRUE(saw_storm);
}

TEST(Detectors, AlarmsFreezeFlightRecorder) {
  diag::FlightRecorder flight;
  auto params = victim_params(16);
  FabricObservatoryConfig cfg;
  cfg.flight = &flight;
  FabricObservatory obs(cfg);
  params.observatory = &obs;
  run_multi_cc_sim(params, [] { return std::make_unique<Dcqcn>(); });
  FabricDetectorConfig det;
  det.queue_hot_bytes = params.pfc_pause;
  detect_anomalies(obs, det);
  const auto dumps = flight.dumps();
  ASSERT_EQ(dumps.size(), 1u);  // one freeze per detection pass
  EXPECT_EQ(dumps[0].reason.rfind("fabric:", 0), 0u);
  EXPECT_FALSE(dumps[0].events.empty());
}

TEST(Detectors, QuietFabricRaisesNothing) {
  FabricObservatory obs;
  const int l = obs.add_link("idle", gbps(200));
  for (int b = 0; b < 10; ++b) {
    obs.record_tx(l, milliseconds(static_cast<double>(b)), 10.0);
  }
  const auto report = detect_anomalies(obs, {});
  EXPECT_TRUE(report.alarms.empty());
  EXPECT_EQ(report.first_alarm, -1);
}

// ------------------------------------------- ecmp / flowsim attribution

TEST(Observatory, EcmpAnalysisRecordsFlowsAndReportsUnchanged) {
  ClosTopology topo(small_clos_params());
  Rng rng(derive_seed(7, "fabric.test"));
  const auto flows = ring_traffic(topo, 16, false, rng);
  const auto bare = analyze_ecmp(topo, flows);
  FabricObservatory obs;
  const auto observed = analyze_ecmp(topo, flows, &obs);
  EXPECT_DOUBLE_EQ(bare.mean_throughput_frac, observed.mean_throughput_frac);
  EXPECT_EQ(bare.max_flows_per_uplink, observed.max_flows_per_uplink);
  EXPECT_EQ(obs.flows().size(), flows.size());
  int peak_flows = 0;
  for (int l = 0; l < obs.link_count(); ++l) {
    for (const auto& s : obs.samples(l)) {
      peak_flows = std::max(peak_flows, s.active_flows);
    }
  }
  EXPECT_EQ(peak_flows, bare.max_flows_per_uplink);
}

TEST(Observatory, FlowSimAttributesDeliveredBytesAcrossThePath) {
  ClosTopology topo(small_clos_params());
  FlowSim sim(topo);
  FabricObservatory obs;
  sim.set_observatory(&obs);
  const auto paths = topo.ecmp_paths(0, 1, 0);  // same ToR: one 2-hop path
  ASSERT_EQ(paths.size(), 1u);
  const Bytes size = static_cast<Bytes>(1) << 20;
  sim.add_flow(paths[0], size);
  sim.run();
  ASSERT_EQ(obs.flows().size(), 1u);
  EXPECT_NEAR(obs.flows()[0].bytes, static_cast<double>(size),
              static_cast<double>(size) * 1e-6);
  for (LinkId l : paths[0]) {
    EXPECT_NEAR(obs.series(l).total_tx_bytes(), static_cast<double>(size),
                static_cast<double>(size) * 1e-6);
  }
}

// -------------------------------------------------------------- exports

TEST(Observatory, SketchExportCarriesPerLinkSeries) {
  auto params = victim_params(12);
  FabricObservatory obs;
  params.observatory = &obs;
  run_multi_cc_sim(params, [] { return std::make_unique<Dcqcn>(); });
  const auto sketch = obs.sketch();
  EXPECT_FALSE(sketch.empty());
  int fabric_series = 0;
  double tx_total = 0;
  for (const auto& [key, value] : sketch.series()) {
    EXPECT_EQ(key.rfind("fabric_", 0), 0u) << key;
    ++fabric_series;
    if (key.rfind("fabric_tx_bytes_total", 0) == 0) tx_total += value.counter;
  }
  EXPECT_GE(fabric_series, params.hops);
  EXPECT_GT(tx_total, 0.0);
  EXPECT_GT(sketch.encoded_bytes(), 0);
}

TEST(Observatory, JsonlExportListsLinksSamplesAndFlows) {
  auto params = victim_params(12);
  FabricObservatory obs;
  params.observatory = &obs;
  run_multi_cc_sim(params, [] { return std::make_unique<Dcqcn>(); });
  const auto text = obs.jsonl();
  EXPECT_NE(text.find("fabric-link"), std::string::npos);
  EXPECT_NE(text.find("fabric-sample"), std::string::npos);
  EXPECT_NE(text.find("fabric-flow"), std::string::npos);
}

TEST(Observatory, HeatmapRendersOneRowPerLink) {
  auto params = victim_params(12);
  FabricObservatory obs;
  params.observatory = &obs;
  run_multi_cc_sim(params, [] { return std::make_unique<Dcqcn>(); });
  const auto ascii = obs.heatmap().ascii();
  EXPECT_FALSE(ascii.empty());
}

// ------------------------------------------------------------------ cli

TEST(FabricCli, TopStormNamesTheBottleneckHop) {
  std::ostringstream out, err;
  const int rc = fabric_main({"top", "--scenario", "storm"}, out, err);
  EXPECT_EQ(rc, 0) << err.str();
  EXPECT_NE(out.str().find("hop2"), std::string::npos) << out.str();
}

TEST(FabricCli, ExportRehashEmitsJsonl) {
  std::ostringstream out, err;
  const int rc = fabric_main({"export", "--scenario", "rehash"}, out, err);
  EXPECT_EQ(rc, 0) << err.str();
  EXPECT_NE(out.str().find("fabric-link"), std::string::npos);
}

TEST(FabricCli, UnknownCommandFailsWithUsage) {
  std::ostringstream out, err;
  EXPECT_NE(fabric_main({"frobnicate"}, out, err), 0);
  EXPECT_FALSE(err.str().empty());
}

}  // namespace
}  // namespace ms::net::fabric
