// Golden-scenario regression tests (label: chaos).
//
// Each canonical scenario runs on the DEFAULT ChaosConfig with a fixed
// seed and is diffed against the committed golden record under
// tests/golden/chaos/. Ratios and latencies compare within Tolerance
// (digests and counts in the goldens are informational — exact digest
// stability is asserted in-process by the property suite, since committed
// digests would pin one libm's rounding).
//
// Regenerate after an intentional behaviour change:
//   MS_UPDATE_GOLDEN=1 ./chaos_golden_test
#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>

#include "chaos/outcome.h"
#include "chaos/runner.h"
#include "chaos/scenario.h"

#ifndef MS_GOLDEN_DIR
#error "build must define MS_GOLDEN_DIR"
#endif

namespace ms::chaos {
namespace {

constexpr std::uint64_t kGoldenSeed = 0x601d;

std::string golden_path(const std::string& scenario) {
  return std::string(MS_GOLDEN_DIR) + "/chaos/" + scenario + ".json";
}

class ChaosGolden : public ::testing::TestWithParam<const char*> {};

TEST_P(ChaosGolden, MatchesCommittedRecord) {
  const std::string name = GetParam();
  const auto* scenario = find_scenario(name);
  ASSERT_NE(scenario, nullptr);
  const ChaosConfig cfg;  // golden runs use the production-shaped defaults
  const auto record = run_scenario(cfg, *scenario, kGoldenSeed);

  const auto path = golden_path(name);
  if (std::getenv("MS_UPDATE_GOLDEN") != nullptr) {
    std::ofstream out(path);
    ASSERT_TRUE(out.good()) << "cannot write " << path;
    out << to_json(record) << "\n";
    GTEST_SKIP() << "golden regenerated: " << path;
  }

  std::ifstream in(path);
  ASSERT_TRUE(in.good()) << "missing golden " << path
                         << " (run with MS_UPDATE_GOLDEN=1 to create)";
  std::stringstream buf;
  buf << in.rdbuf();
  OutcomeRecord want;
  ASSERT_TRUE(from_json(buf.str(), want)) << "unparseable golden " << path;

  const auto diffs = diff_outcomes(record, want, Tolerance{});
  for (const auto& diff : diffs) {
    ADD_FAILURE() << name << ": " << diff;
  }
}

INSTANTIATE_TEST_SUITE_P(Canonical, ChaosGolden,
                         ::testing::Values("clean", "failstop-midstep",
                                           "allgather-flap",
                                           "straggler-ckpt-stall",
                                           "ecmp-cascade", "pfc-storm"),
                         [](const auto& info) {
                           std::string name = info.param;
                           for (auto& c : name) {
                             if (c == '-') c = '_';
                           }
                           return name;
                         });

}  // namespace
}  // namespace ms::chaos
