// Tests for the §5 performance-diagnosis analyzer: dependency-graph
// reconstruction from engine traces, critical-path decomposition, blame
// attribution of seeded stragglers / slow links, the RDMA flight recorder,
// trace-artifact IO, and the msdiag CLI.
#include <gtest/gtest.h>

#include <cstdio>
#include <sstream>
#include <string>
#include <vector>

#include "core/json.h"
#include "diag/artifact.h"
#include "diag/blame.h"
#include "diag/depgraph.h"
#include "diag/flight_recorder.h"
#include "diag/msdiag.h"
#include "engine/job.h"
#include "ft/driver_sim.h"
#include "telemetry/trace.h"

namespace {

using namespace ms;

engine::JobConfig diag_config() {
  engine::JobConfig cfg;
  cfg.model = model::config_175b();
  cfg.par.tp = 8;
  cfg.par.pp = 8;
  cfg.par.vpp = 6;
  cfg.par.dp = 4;
  cfg.global_batch = 256;
  cfg.ops = model::OperatorProfile::megascale();
  cfg.overlap = engine::OverlapOptions::megascale();
  return cfg;
}

std::vector<diag::TraceSpan> traced_spans(engine::JobConfig cfg) {
  telemetry::Tracer tracer;
  cfg.tracer = &tracer;
  EXPECT_EQ(engine::validate(cfg), "");
  engine::simulate_iteration(cfg);
  return tracer.spans();
}

std::string temp_path(const std::string& name) {
  return testing::TempDir() + "/" + name;
}

// ------------------------------------------------------------- SpanAttrs

TEST(SpanAttrs, ParsesKeyValueTokens) {
  const diag::SpanAttrs a("s=3 c=1 mb=12 p=b head=1 grp=dp");
  EXPECT_EQ(a.num("s"), 3);
  EXPECT_EQ(a.num("mb"), 12);
  EXPECT_EQ(a.text("p"), "b");
  EXPECT_TRUE(a.has("head"));
  EXPECT_FALSE(a.has("stream"));
  EXPECT_EQ(a.num("missing", -7), -7);
  EXPECT_EQ(a.text("missing", "x"), "x");
}

// -------------------------------------------------------------- DepGraph

TEST(DepGraph, ReconstructsCrossRankEdgesFromEngineTrace) {
  const auto spans = traced_spans(diag_config());
  ASSERT_FALSE(spans.empty());
  const auto graph = diag::DepGraph::build(spans);
  EXPECT_EQ(graph.size(), spans.size());

  int transfers = 0, produces = 0, consumes = 0, collectives = 0, data = 0;
  for (const auto& e : graph.edges()) {
    switch (e.kind) {
      case diag::EdgeKind::kTransfer: ++transfers; break;
      case diag::EdgeKind::kProduce: ++produces; break;
      case diag::EdgeKind::kConsume: ++consumes; break;
      case diag::EdgeKind::kCollective: ++collectives; break;
      case diag::EdgeKind::kData: ++data; break;
      default: break;
    }
  }
  EXPECT_GT(transfers, 0);
  EXPECT_GT(produces, 0);
  EXPECT_GT(consumes, 0);
  EXPECT_GT(collectives, 0);
  EXPECT_GT(data, 0);

  // A send->recv edge must cross ranks; program order must not.
  for (const auto& e : graph.edges()) {
    if (e.kind == diag::EdgeKind::kTransfer) {
      EXPECT_NE(graph.spans()[e.from].rank, graph.spans()[e.to].rank);
    }
  }
  EXPECT_EQ(graph.spans()[graph.sink()].end, graph.makespan());
}

// --------------------------------------------------------- critical path

TEST(CriticalPath, SegmentsTileTheStepContiguously) {
  const auto d = diag::analyze_spans(traced_spans(diag_config()));
  ASSERT_FALSE(d.path.empty());
  EXPECT_EQ(d.path.back().end, d.makespan);
  for (std::size_t i = 1; i < d.path.size(); ++i) {
    EXPECT_EQ(d.path[i - 1].end, d.path[i].begin);
    EXPECT_GE(d.path[i].duration(), 0);
  }
  TimeNs path_total = 0;
  for (const auto& s : d.path) path_total += s.duration();
  TimeNs breakdown_total = 0;
  for (const auto& [kind, t] : d.breakdown) breakdown_total += t;
  EXPECT_EQ(path_total, breakdown_total);
  EXPECT_EQ(d.path.front().begin + path_total, d.makespan);
}

TEST(CriticalPath, HealthyRunHasNoStragglerBlame) {
  const auto d = diag::analyze_spans(traced_spans(diag_config()));
  const auto it = d.breakdown.find(diag::SegmentKind::kStragglerWait);
  if (it != d.breakdown.end()) {
    EXPECT_EQ(it->second, 0);
  }
  for (const auto& entry : d.blame) {
    EXPECT_NE(entry.cause, diag::SegmentKind::kStragglerWait);
  }
}

// ------------------------------------------------------------ blame: who

TEST(Blame, SeededStragglerRankIsTopCulprit) {
  auto cfg = diag_config();
  cfg.stage_speed.assign(static_cast<std::size_t>(cfg.par.pp), 1.0);
  cfg.stage_speed[3] = 2.0;  // stage 3 computes at half speed
  const auto d = diag::analyze_spans(traced_spans(cfg));
  ASSERT_FALSE(d.blame.empty());
  EXPECT_EQ(d.blame.front().cause, diag::SegmentKind::kStragglerWait);
  EXPECT_EQ(d.blame.front().rank, 3);
  EXPECT_GT(d.blame.front().share, 0.2);
}

TEST(Blame, SeededSlowLinkIsTopCulprit) {
  auto cfg = diag_config();
  // Couple p2p back onto the compute stream (Megatron-style PP) so the
  // degraded link is exposed rather than hidden by the §3.2 overlap.
  cfg.overlap.pp_decouple = false;
  cfg.link_speed.assign(static_cast<std::size_t>(cfg.par.pp), 1.0);
  cfg.link_speed[2] = 16.0;  // stage 2's outbound NIC degrades 16x
  const auto d = diag::analyze_spans(traced_spans(cfg));
  ASSERT_FALSE(d.blame.empty());
  EXPECT_EQ(d.blame.front().cause, diag::SegmentKind::kSlowLink);
  EXPECT_EQ(d.blame.front().link.rfind("2->", 0), 0u) << d.blame.front().link;
  EXPECT_EQ(d.blame.front().rank, 2);
}

TEST(Blame, SameSeedYieldsIdenticalDigest) {
  auto cfg = diag_config();
  cfg.stage_speed.assign(static_cast<std::size_t>(cfg.par.pp), 1.0);
  cfg.stage_speed[5] = 1.7;
  const auto a = diag::analyze_spans(traced_spans(cfg));
  const auto b = diag::analyze_spans(traced_spans(cfg));
  EXPECT_EQ(a.digest, b.digest);
  EXPECT_EQ(a.makespan, b.makespan);
  const auto healthy = diag::analyze_spans(traced_spans(diag_config()));
  EXPECT_NE(a.digest, healthy.digest);
}

TEST(Blame, RenderAndJsonReports) {
  auto cfg = diag_config();
  cfg.stage_speed.assign(static_cast<std::size_t>(cfg.par.pp), 1.0);
  cfg.stage_speed[3] = 2.0;
  const auto d = diag::analyze_spans(traced_spans(cfg));

  const std::string text = diag::render(d, 3);
  EXPECT_NE(text.find("straggler-wait"), std::string::npos);
  EXPECT_NE(text.find("rank 3"), std::string::npos);

  json::Value v;
  ASSERT_TRUE(json::parse(diag::diagnosis_json(d), v));
  EXPECT_EQ(static_cast<TimeNs>(v.num("makespan_ns")), d.makespan);
  ASSERT_TRUE(v.has("blame"));
  ASSERT_GT(v.at("blame").size(), 0u);
  EXPECT_EQ(v.at("blame")[0].text("cause"), "straggler-wait");
}

TEST(Blame, DiffReportLocalizesTheRegression) {
  auto slow = diag_config();
  slow.stage_speed.assign(static_cast<std::size_t>(slow.par.pp), 1.0);
  slow.stage_speed[3] = 2.0;
  const auto base = diag::analyze_spans(traced_spans(diag_config()));
  const auto cand = diag::analyze_spans(traced_spans(slow));
  const std::string report = diag::diff_report(base, cand);
  EXPECT_NE(report.find("straggler-wait"), std::string::npos);
  EXPECT_NE(report.find("rank 3"), std::string::npos);
  EXPECT_NE(report.find("makespan"), std::string::npos);
}

// ------------------------------------------------------- flight recorder

TEST(FlightRecorder, RingKeepsOnlyTheMostRecentEvents) {
  diag::FlightRecorder rec({/*capacity_per_node=*/2});
  for (int i = 0; i < 5; ++i) {
    rec.record(0, milliseconds(static_cast<double>(i)), "heartbeat",
               "n=" + std::to_string(i));
  }
  const auto dump = rec.trigger("test", milliseconds(10.0));
  ASSERT_EQ(dump.events.size(), 2u);
  EXPECT_EQ(dump.events[0].detail, "n=3");
  EXPECT_EQ(dump.events[1].detail, "n=4");
  EXPECT_EQ(rec.total_recorded(), 5u);
  EXPECT_EQ(rec.total_dropped(), 3u);
  EXPECT_EQ(rec.dumps().size(), 1u);
}

TEST(FlightRecorder, DumpMergesNodesInTimeOrder) {
  diag::FlightRecorder rec;
  rec.record(1, milliseconds(2.0), "collective", "op=all-gather");
  rec.record(0, milliseconds(1.0), "heartbeat");
  rec.record(2, milliseconds(2.0), "alarm", "kind=timeout");
  const auto dump = rec.trigger("anomaly node=2", milliseconds(3.0));
  ASSERT_EQ(dump.events.size(), 3u);
  EXPECT_EQ(dump.events[0].node, 0);
  EXPECT_EQ(dump.events[1].node, 1);  // same time as node 2, earlier seq
  EXPECT_EQ(dump.events[2].node, 2);
}

TEST(FlightRecorder, JsonlRoundTripAndPerfettoExport) {
  diag::FlightRecorder rec;
  rec.record(0, milliseconds(1.0), "heartbeat", "rdma_gbps=150.00 err=0");
  rec.record(1, milliseconds(2.0), "fault", "type=\"nic flap\"\n");
  const auto dump = rec.trigger("chaos oracle", milliseconds(5.0));

  diag::FlightDump loaded;
  ASSERT_TRUE(diag::parse_flight_dump_jsonl(diag::flight_dump_jsonl(dump),
                                            loaded));
  EXPECT_EQ(loaded.reason, dump.reason);
  EXPECT_EQ(loaded.time, dump.time);
  ASSERT_EQ(loaded.events.size(), dump.events.size());
  for (std::size_t i = 0; i < dump.events.size(); ++i) {
    EXPECT_EQ(loaded.events[i].time, dump.events[i].time);
    EXPECT_EQ(loaded.events[i].node, dump.events[i].node);
    EXPECT_EQ(loaded.events[i].kind, dump.events[i].kind);
    EXPECT_EQ(loaded.events[i].detail, dump.events[i].detail);
  }

  json::Value v;
  ASSERT_TRUE(
      json::parse(diag::flight_dump_timeline(loaded).chrome_trace_json(), v));
  EXPECT_EQ(v.at("traceEvents").size(), loaded.events.size());
}

TEST(FlightRecorder, MalformedDumpIsRejected) {
  diag::FlightDump out;
  EXPECT_FALSE(diag::parse_flight_dump_jsonl("", out));
  EXPECT_FALSE(diag::parse_flight_dump_jsonl("{\"type\":\"flight-event\"}\n",
                                             out));
  EXPECT_FALSE(diag::parse_flight_dump_jsonl("not json\n", out));
}

TEST(FlightRecorder, DriverSimDumpsOnDetectedAnomaly) {
  diag::FlightRecorder flight;
  ft::DriverSimConfig cfg;
  cfg.nodes = 8;
  cfg.flight = &flight;
  Rng rng(42);
  const std::vector<ft::FaultEvent> faults = {
      {minutes(5.0), 2, ft::FaultType::kGpuHang}};
  run_driver_sim(cfg, hours(1.0), faults, rng);

  const auto dumps = flight.dumps();
  ASSERT_FALSE(dumps.empty());
  const auto& dump = dumps.front();
  EXPECT_NE(dump.reason.find("node=2"), std::string::npos) << dump.reason;
  bool saw_fault = false;
  for (const auto& e : dump.events) {
    if (e.kind == "fault" && e.node == 2) saw_fault = true;
  }
  EXPECT_TRUE(saw_fault);

  // The dump round-trips through the artifact layer into a Perfetto trace.
  diag::FlightDump loaded;
  ASSERT_TRUE(diag::parse_flight_dump_jsonl(diag::flight_dump_jsonl(dump),
                                            loaded));
  json::Value v;
  EXPECT_TRUE(
      json::parse(diag::flight_dump_timeline(loaded).chrome_trace_json(), v));
}

// ------------------------------------------------------------- artifacts

TEST(Artifact, TraceJsonlRoundTripPreservesSpans) {
  std::vector<diag::TraceSpan> spans;
  spans.push_back({0, "fwd \"quoted\"", "fwd", 0, milliseconds(1.0),
                   "s=0 c=0 mb=0 p=f"});
  spans.push_back({3, "send", "pp-comm", milliseconds(1.0), milliseconds(2.0),
                   "p=f mb=0 from=0 to=1 c=0 pc=0"});
  spans.push_back({1, "opt", "optimizer", milliseconds(2.0), milliseconds(3.0),
                   ""});

  std::vector<diag::TraceSpan> loaded;
  ASSERT_TRUE(diag::parse_trace_jsonl(diag::trace_jsonl(spans), loaded));
  ASSERT_EQ(loaded.size(), spans.size());
  for (std::size_t i = 0; i < spans.size(); ++i) {
    EXPECT_EQ(loaded[i].rank, spans[i].rank);
    EXPECT_EQ(loaded[i].name, spans[i].name);
    EXPECT_EQ(loaded[i].tag, spans[i].tag);
    EXPECT_EQ(loaded[i].start, spans[i].start);
    EXPECT_EQ(loaded[i].end, spans[i].end);
    EXPECT_EQ(loaded[i].detail, spans[i].detail);
  }
}

TEST(Artifact, WriteCreatesParentDirectories) {
  const std::string path = temp_path("diag_artifact_sub/dir/trace.jsonl");
  ASSERT_TRUE(diag::write_text_file(path, "hello\n"));
  std::string back;
  ASSERT_TRUE(diag::read_text_file(path, back));
  EXPECT_EQ(back, "hello\n");
  EXPECT_FALSE(diag::read_text_file(temp_path("no_such_file"), back));
}

// ----------------------------------------------------------------- msdiag

class MsdiagTest : public testing::Test {
 protected:
  int run(const std::vector<std::string>& args) {
    out.str("");
    err.str("");
    return diag::msdiag_main(args, out, err);
  }
  std::ostringstream out, err;
};

TEST_F(MsdiagTest, AnalyzeReportsSeededStraggler) {
  auto cfg = diag_config();
  cfg.stage_speed.assign(static_cast<std::size_t>(cfg.par.pp), 1.0);
  cfg.stage_speed[3] = 2.0;
  const std::string path = temp_path("msdiag_straggler.jsonl");
  ASSERT_TRUE(diag::write_text_file(path,
                                    diag::trace_jsonl(traced_spans(cfg))));

  ASSERT_EQ(run({"analyze", path, "--top", "3"}), 0) << err.str();
  EXPECT_NE(out.str().find("straggler-wait"), std::string::npos);
  EXPECT_NE(out.str().find("rank 3"), std::string::npos);

  ASSERT_EQ(run({"analyze", path, "--json"}), 0) << err.str();
  json::Value v;
  ASSERT_TRUE(json::parse(out.str(), v));
  EXPECT_EQ(v.at("blame")[0].text("cause"), "straggler-wait");
}

TEST_F(MsdiagTest, DiffExportAndFlightCommands) {
  const std::string base = temp_path("msdiag_base.jsonl");
  const std::string cand = temp_path("msdiag_cand.jsonl");
  auto cfg = diag_config();
  ASSERT_TRUE(diag::write_text_file(base,
                                    diag::trace_jsonl(traced_spans(cfg))));
  cfg.stage_speed.assign(static_cast<std::size_t>(cfg.par.pp), 1.0);
  cfg.stage_speed[3] = 2.0;
  ASSERT_TRUE(diag::write_text_file(cand,
                                    diag::trace_jsonl(traced_spans(cfg))));

  ASSERT_EQ(run({"diff", base, cand}), 0) << err.str();
  EXPECT_NE(out.str().find("straggler-wait"), std::string::npos);

  // export: annotated Perfetto trace, critical-path spans marked.
  const std::string annotated = temp_path("msdiag_annotated.json");
  ASSERT_EQ(run({"export", cand, annotated}), 0) << err.str();
  std::string trace_text;
  ASSERT_TRUE(diag::read_text_file(annotated, trace_text));
  json::Value v;
  ASSERT_TRUE(json::parse(trace_text, v));
  ASSERT_GT(v.at("traceEvents").size(), 0u);
  EXPECT_NE(trace_text.find("critical=1"), std::string::npos);

  // flight: summary + Perfetto export of a recorded dump.
  diag::FlightRecorder rec;
  rec.record(0, milliseconds(1.0), "heartbeat", "rdma_gbps=150.00 err=0");
  rec.record(2, milliseconds(2.0), "alarm", "kind=timeout");
  const std::string dump_path = temp_path("msdiag_flight.jsonl");
  const std::string perfetto = temp_path("msdiag_flight.json");
  ASSERT_TRUE(diag::write_text_file(
      dump_path,
      diag::flight_dump_jsonl(rec.trigger("timeout node=2",
                                          milliseconds(3.0)))));
  ASSERT_EQ(run({"flight", dump_path, "--perfetto", perfetto}), 0)
      << err.str();
  EXPECT_NE(out.str().find("timeout node=2"), std::string::npos);
  ASSERT_TRUE(diag::read_text_file(perfetto, trace_text));
  EXPECT_TRUE(json::parse(trace_text, v));
}

TEST_F(MsdiagTest, BadInvocationsFailWithUsage) {
  EXPECT_EQ(run({}), 1);
  EXPECT_NE(err.str().find("usage"), std::string::npos);
  EXPECT_EQ(run({"frobnicate"}), 1);
  EXPECT_EQ(run({"analyze", temp_path("msdiag_missing.jsonl")}), 1);
  EXPECT_EQ(run({"diff", temp_path("msdiag_missing.jsonl")}), 1);
}

}  // namespace
