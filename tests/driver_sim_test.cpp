// Tests for the event-driven driver/executor protocol (§4.1 Figure 5).
#include <gtest/gtest.h>

#include "ft/driver_sim.h"

namespace ms::ft {
namespace {

DriverSimConfig small_cfg() {
  DriverSimConfig cfg;
  cfg.nodes = 8;
  cfg.spares = 2;
  return cfg;
}

TEST(DriverSim, QuietClusterTrainsTheWholeTime) {
  Rng rng(1);
  auto report = run_driver_sim(small_cfg(), hours(1.0), {}, rng);
  EXPECT_TRUE(report.incidents.empty());
  EXPECT_DOUBLE_EQ(report.effective_fraction, 1.0);
  // 8 nodes, one beat per 10 s, one hour.
  EXPECT_NEAR(static_cast<double>(report.heartbeats_processed), 8 * 360, 16);
}

TEST(DriverSim, ExplicitErrorDetectedWithinOneBeat) {
  Rng rng(2);
  std::vector<FaultEvent> faults{{minutes(10.0), 3, FaultType::kCudaError}};
  auto report = run_driver_sim(small_cfg(), hours(1.0), faults, rng);
  ASSERT_EQ(report.incidents.size(), 1u);
  const auto& incident = report.incidents[0];
  EXPECT_EQ(incident.node, 3);
  EXPECT_EQ(incident.type, FaultType::kCudaError);
  EXPECT_EQ(incident.alarm_kind, AlarmKind::kErrorStatus);
  EXPECT_LE(incident.alarm_at - incident.fault_at,
            small_cfg().detector.heartbeat_interval);
  EXPECT_GT(incident.resumed_at, incident.alarm_at);
}

TEST(DriverSim, HangDetectedByTimeoutSweep) {
  Rng rng(3);
  std::vector<FaultEvent> faults{{minutes(5.0), 6, FaultType::kGpuHang}};
  auto report = run_driver_sim(small_cfg(), hours(1.0), faults, rng);
  ASSERT_EQ(report.incidents.size(), 1u);
  EXPECT_EQ(report.incidents[0].alarm_kind, AlarmKind::kHeartbeatTimeout);
  EXPECT_LE(report.incidents[0].alarm_at - report.incidents[0].fault_at,
            small_cfg().detector.heartbeat_timeout +
                2 * small_cfg().detector.heartbeat_interval);
}

TEST(DriverSim, NicFlapCaughtByRdmaMonitor) {
  Rng rng(4);
  std::vector<FaultEvent> faults{{minutes(5.0), 1, FaultType::kNicFlap}};
  auto report = run_driver_sim(small_cfg(), hours(1.0), faults, rng);
  ASSERT_EQ(report.incidents.size(), 1u);
  EXPECT_EQ(report.incidents[0].alarm_kind, AlarmKind::kRdmaSilence);
}

TEST(DriverSim, SilentStragglerNeverTriggersRecovery) {
  Rng rng(5);
  std::vector<FaultEvent> faults{{minutes(5.0), 2, FaultType::kSlowGpu}};
  auto report = run_driver_sim(small_cfg(), hours(2.0), faults, rng);
  EXPECT_TRUE(report.incidents.empty());  // needs the §5 tooling instead
}

TEST(DriverSim, MultipleFaultsAllRecovered) {
  Rng rng(6);
  std::vector<FaultEvent> faults{
      {minutes(5.0), 0, FaultType::kCudaError},
      {minutes(30.0), 4, FaultType::kSegFault},
      {minutes(55.0), 7, FaultType::kEccError},
  };
  auto cfg = small_cfg();
  cfg.spares = 4;  // enough spares that the pool never gates recovery
  auto report = run_driver_sim(cfg, hours(2.0), faults, rng);
  EXPECT_EQ(report.incidents.size(), 3u);
  EXPECT_GE(report.effective_fraction, 0.75);
  for (const auto& incident : report.incidents) {
    EXPECT_GE(incident.resumed_at, incident.alarm_at);
  }
}

TEST(DriverSim, SparePoolExhaustionStallsRecovery) {
  auto cfg = small_cfg();
  cfg.spares = 1;
  cfg.node_repair_time = hours(12.0);  // repairs never come back in time
  std::vector<FaultEvent> faults{
      {minutes(5.0), 0, FaultType::kCudaError},
      {minutes(20.0), 1, FaultType::kSegFault},
      {minutes(40.0), 2, FaultType::kEccError},
  };
  Rng rng(7);
  auto report = run_driver_sim(cfg, hours(2.0), faults, rng);
  EXPECT_GE(report.spare_pool_exhausted_events, 1);
  // Compare with an ample pool: strictly better effective time.
  auto rich = small_cfg();
  rich.spares = 8;
  Rng rng2(7);
  auto rich_report = run_driver_sim(rich, hours(2.0), faults, rng2);
  EXPECT_GT(rich_report.effective_fraction, report.effective_fraction);
  EXPECT_EQ(rich_report.spare_pool_exhausted_events, 0);
}

TEST(DriverSim, RepairedNodesReplenishThePool) {
  auto cfg = small_cfg();
  cfg.spares = 1;
  cfg.node_repair_time = minutes(10.0);  // fast repair loop
  std::vector<FaultEvent> faults{
      {minutes(5.0), 0, FaultType::kCudaError},
      {minutes(40.0), 1, FaultType::kSegFault},
      {minutes(80.0), 2, FaultType::kEccError},
  };
  Rng rng(8);
  auto report = run_driver_sim(cfg, hours(2.0), faults, rng);
  EXPECT_EQ(report.incidents.size(), 3u);
  EXPECT_EQ(report.spare_pool_exhausted_events, 0);
}

TEST(DriverSim, EffectiveFractionMatchesIncidentAccounting) {
  Rng rng(9);
  std::vector<FaultEvent> faults{{minutes(10.0), 3, FaultType::kCudaError}};
  auto report = run_driver_sim(small_cfg(), hours(1.0), faults, rng);
  ASSERT_EQ(report.incidents.size(), 1u);
  const auto& incident = report.incidents[0];
  const TimeNs downtime = incident.resumed_at - incident.alarm_at;
  EXPECT_NEAR(report.effective_fraction,
              1.0 - to_seconds(downtime) / 3600.0, 1e-6);
}

}  // namespace
}  // namespace ms::ft
