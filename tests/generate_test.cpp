// Tests for LM evaluation and autoregressive generation.
#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "optim/trainer.h"

namespace ms::optim {
namespace {

TinyGptConfig tiny() {
  TinyGptConfig cfg;
  cfg.vocab = 16;
  cfg.seq_len = 16;
  cfg.hidden = 32;
  cfg.heads = 4;
  cfg.layers = 2;
  cfg.ffn_hidden = 64;
  return cfg;
}

TEST(Evaluate, UntrainedModelNearUniformLoss) {
  Rng rng(1);
  TinyGpt model(tiny(), rng);
  MarkovCorpus corpus(16, 3, 2);
  Rng data(3);
  const double loss = evaluate_lm(model, corpus, 8, data);
  EXPECT_NEAR(loss, std::log(16.0), 0.4);
}

TEST(Evaluate, TrainingImprovesHeldOutLoss) {
  Rng rng(4);
  TinyGpt model(tiny(), rng);
  MarkovCorpus corpus(16, 3, 5);
  Rng eval_rng1(6);
  const double before = evaluate_lm(model, corpus, 8, eval_rng1);
  Adam opt(model.parameters());
  TrainConfig tc;
  tc.steps = 80;
  tc.batch_size = 4;
  tc.lr = 3e-3f;
  Rng data(7);
  train_lm(model, opt, corpus, tc, data);
  Rng eval_rng2(6);  // same held-out stream
  const double after = evaluate_lm(model, corpus, 8, eval_rng2);
  EXPECT_LT(after, before - 0.3);
}

TEST(Generate, ExtendsPromptByRequestedTokens) {
  Rng rng(8);
  TinyGpt model(tiny(), rng);
  Rng gen_rng(9);
  auto out = generate(model, {1, 2, 3}, 10, gen_rng);
  ASSERT_EQ(out.size(), 13u);
  EXPECT_EQ(out[0], 1);
  EXPECT_EQ(out[2], 3);
  for (int t : out) {
    EXPECT_GE(t, 0);
    EXPECT_LT(t, 16);
  }
}

TEST(Generate, GreedyIsDeterministic) {
  Rng rng(10);
  TinyGpt model(tiny(), rng);
  Rng g1(11), g2(12);  // different rngs must not matter at temperature 0
  auto a = generate(model, {5}, 8, g1, /*temperature=*/0.0f);
  auto b = generate(model, {5}, 8, g2, 0.0f);
  EXPECT_EQ(a, b);
}

TEST(Generate, TrainedModelFollowsChainSupport) {
  // After training on a branching-2 Markov chain, greedy continuations
  // should only use transitions that exist in the chain.
  auto cfg = tiny();
  Rng rng(13);
  TinyGpt model(cfg, rng);
  MarkovCorpus corpus(16, 2, 14);
  Adam opt(model.parameters());
  TrainConfig tc;
  tc.steps = 120;
  tc.batch_size = 4;
  tc.lr = 3e-3f;
  Rng data(15);
  train_lm(model, opt, corpus, tc, data);

  // Collect the chain's actual transition support from samples.
  std::set<std::pair<int, int>> support;
  Rng sample_rng(16);
  for (int i = 0; i < 200; ++i) {
    auto seq = corpus.sample_sequence(50, sample_rng);
    for (std::size_t t = 1; t < seq.size(); ++t) {
      support.emplace(seq[t - 1], seq[t]);
    }
  }

  Rng gen_rng(17);
  auto prompt = corpus.sample_sequence(8, gen_rng);
  auto out = generate(model, prompt, 24, gen_rng, /*temperature=*/0.0f);
  int on_chain = 0, total = 0;
  for (std::size_t t = prompt.size(); t < out.size(); ++t) {
    ++total;
    if (support.count({out[t - 1], out[t]})) ++on_chain;
  }
  // The model should mostly emit legal transitions.
  EXPECT_GE(on_chain, total * 3 / 4);
}

TEST(Generate, LongGenerationRespectsContextWindow) {
  Rng rng(18);
  TinyGpt model(tiny(), rng);
  Rng gen_rng(19);
  // 3x the context length: must not crash, output stays valid.
  auto out = generate(model, {0, 1}, 48, gen_rng);
  EXPECT_EQ(out.size(), 50u);
}

}  // namespace
}  // namespace ms::optim
