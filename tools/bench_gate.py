#!/usr/bin/env python3
"""Regression gate for the canonical BENCH_*.json bench artifacts.

Every bench binary writes BENCH_<name>.json (see bench/common.h) with a
`metrics` object (regression-gated values), a `tolerances` object (the
per-metric relative tolerance the bench author chose), and an `info`
object (wall-clock / host-dependent values that are recorded but never
gated).  This script compares a directory of freshly produced artifacts
against the committed baselines in bench/baselines/:

  * every baseline metric must exist in the fresh artifact,
  * |fresh - base| <= rel_tol * max(|base|, 1e-12)  (rel_tol == 0 means
    the value must be bit-identical after %.17g rendering),
  * metrics present only in the fresh artifact are reported as NEW (not
    a failure -- commit a refreshed baseline to start gating them),
  * info values are reported for context but never fail the gate.

Usage:
  tools/bench_gate.py [--baselines bench/baselines] [--fresh .] [names...]
  tools/bench_gate.py --update   # copy fresh artifacts over the baselines

Exit status: 0 when every compared bench passes, 1 otherwise.
"""

from __future__ import annotations

import argparse
import json
import math
import os
import shutil
import subprocess
import sys

EPS = 1e-12


def stray_tracked_artifacts(repo_root: str) -> list[str]:
    """Tracked BENCH_*.json files living outside bench/baselines/.

    Bench binaries drop their artifact in the working directory, which makes
    it easy to `git add` a run output by accident; only the committed
    baselines belong in the tree.  Returns [] when git is unavailable (e.g.
    an exported tarball) -- the check is advisory there.
    """
    try:
        out = subprocess.run(
            ["git", "-C", repo_root, "ls-files", "*BENCH_*.json"],
            capture_output=True, text=True, check=True).stdout
    except (OSError, subprocess.CalledProcessError):
        return []
    return [p for p in out.splitlines()
            if p and not p.startswith("bench/baselines/")]


def load(path: str) -> dict:
    with open(path, "r", encoding="utf-8") as fh:
        return json.load(fh)


def fmt(v: float) -> str:
    return "%.17g" % v


def compare(name: str, base: dict, fresh: dict) -> tuple[bool, list[str]]:
    """Returns (passed, report lines) for one bench."""
    lines: list[str] = []
    ok = True
    base_metrics = base.get("metrics", {})
    fresh_metrics = fresh.get("metrics", {})
    tols = base.get("tolerances", {})

    for key in sorted(base_metrics):
        b = float(base_metrics[key])
        tol = float(tols.get(key, 0.05))
        if key not in fresh_metrics:
            ok = False
            lines.append(f"  FAIL {key}: missing from fresh artifact")
            continue
        f = float(fresh_metrics[key])
        if tol == 0.0:
            good = fmt(b) == fmt(f)
            drift = "exact" if good else f"{fmt(b)} != {fmt(f)}"
        else:
            denom = max(abs(b), EPS)
            rel = abs(f - b) / denom
            good = math.isfinite(rel) and rel <= tol
            drift = f"drift {rel * 100:.2f}% (tol {tol * 100:.1f}%)"
        if good:
            lines.append(f"  ok   {key}: {fmt(f)}  [{drift}]")
        else:
            ok = False
            lines.append(
                f"  FAIL {key}: baseline {fmt(b)} fresh {fmt(f)}  [{drift}]")

    for key in sorted(set(fresh_metrics) - set(base_metrics)):
        lines.append(f"  NEW  {key}: {fmt(float(fresh_metrics[key]))} "
                     "(not in baseline -- refresh to gate it)")

    for key in sorted(fresh.get("info", {})):
        lines.append(f"  info {key}: {fmt(float(fresh['info'][key]))}")

    return ok, lines


def main() -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--baselines", default="bench/baselines",
                    help="directory of committed BENCH_*.json baselines")
    ap.add_argument("--fresh", default=".",
                    help="directory holding freshly produced BENCH_*.json")
    ap.add_argument("--update", action="store_true",
                    help="copy fresh artifacts over the baselines and exit")
    ap.add_argument("names", nargs="*",
                    help="bench names to gate (default: every baseline)")
    args = ap.parse_args()

    repo_root = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
    strays = stray_tracked_artifacts(repo_root)
    if strays:
        for path in strays:
            print(f"bench_gate: stray tracked artifact {path} "
                  "(only bench/baselines/ may hold committed BENCH_*.json)",
                  file=sys.stderr)
        return 1

    if args.update:
        os.makedirs(args.baselines, exist_ok=True)
        copied = 0
        for entry in sorted(os.listdir(args.fresh)):
            if not (entry.startswith("BENCH_") and entry.endswith(".json")):
                continue
            name = entry[len("BENCH_"):-len(".json")]
            if args.names and name not in args.names:
                continue
            load(os.path.join(args.fresh, entry))  # must parse
            shutil.copyfile(os.path.join(args.fresh, entry),
                            os.path.join(args.baselines, entry))
            print(f"updated {os.path.join(args.baselines, entry)}")
            copied += 1
        if copied == 0:
            print("bench_gate: no BENCH_*.json artifacts found to update",
                  file=sys.stderr)
            return 1
        return 0

    if not os.path.isdir(args.baselines):
        print(f"bench_gate: no baseline directory {args.baselines}",
              file=sys.stderr)
        return 1

    selected = []
    for entry in sorted(os.listdir(args.baselines)):
        if not (entry.startswith("BENCH_") and entry.endswith(".json")):
            continue
        name = entry[len("BENCH_"):-len(".json")]
        if args.names and name not in args.names:
            continue
        selected.append((name, entry))
    if args.names:
        known = {name for name, _ in selected}
        for name in args.names:
            if name not in known:
                print(f"bench_gate: no baseline for '{name}'", file=sys.stderr)
                return 1
    if not selected:
        print("bench_gate: no baselines selected", file=sys.stderr)
        return 1

    failures = 0
    for name, entry in selected:
        base = load(os.path.join(args.baselines, entry))
        fresh_path = os.path.join(args.fresh, entry)
        if not os.path.exists(fresh_path):
            print(f"== {name}: FAIL (missing fresh artifact {fresh_path})")
            failures += 1
            continue
        fresh = load(fresh_path)
        ok, lines = compare(name, base, fresh)
        print(f"== {name}: {'ok' if ok else 'FAIL'}")
        for line in lines:
            print(line)
        if not ok:
            failures += 1

    total = len(selected)
    print(f"\nbench_gate: {total - failures}/{total} benches within tolerance")
    return 0 if failures == 0 else 1


if __name__ == "__main__":
    sys.exit(main())
