// msdiag — command-line front end for the §5 diagnosis library.
//
//   msdiag analyze out/trace.jsonl --top 5
//   msdiag diff base.jsonl cand.jsonl
//   msdiag flight out/flight-000.jsonl --perfetto flight.json
//   msdiag export out/trace.jsonl annotated.json
//   msdiag demo out/trace.jsonl [--straggler R | --slow-link S] [--factor F]
//   msdiag ledger out/fig11_ledger.jsonl [--json] [--no-chart]
//   msdiag ledger --diff base.jsonl cand.jsonl
//   msdiag calibrate trace.jsonl --preset fixture --fitted-out fit.jsonl
//   msdiag calibrate --emit trace.jsonl --gemm-eff 0.65
//   msdiag fabric top --scenario storm --intensity 0.8
//   msdiag fabric timeline --scenario rehash --out fabric.json
//
// `demo` and `ledger` are the two commands implemented here rather than in
// src/diag: `ledger` renders telemetry::RunLedger artifacts (src/diag cannot
// depend on the telemetry dashboard layer), and `demo` is below. `demo`
// links the training-iteration engine (which src/diag cannot depend on) to
// synthesize a realistic single-step trace, optionally with an injected
// straggler stage or degraded p2p link, then writes the JSONL artifact the
// other commands consume. That makes the full workflow reproducible from a
// clean checkout:  msdiag demo t.jsonl --straggler 3 && msdiag analyze t.jsonl
//
// ms-lint: allow-file(test-coverage): thin CLI shim; all command logic is
// in src/diag/msdiag.cpp, exercised by tests/diag_analyzer_test.cpp.
#include <cstdlib>
#include <iostream>
#include <string>
#include <vector>

#include "calib/calibrate_cli.h"
#include "diag/artifact.h"
#include "net/fabric/fabric_cli.h"
#include "diag/blame.h"
#include "diag/msdiag.h"
#include "engine/job.h"
#include "telemetry/exporters.h"
#include "telemetry/ledger.h"
#include "telemetry/trace.h"

namespace {

using namespace ms;

int demo_usage(std::ostream& err) {
  err << "usage: msdiag demo <out.jsonl> [--straggler RANK | --slow-link "
         "STAGE] [--factor F]\n"
         "  synthesizes one traced training step (pp=8 pipeline) and writes\n"
         "  it as a trace artifact; --straggler slows one stage's compute,\n"
         "  --slow-link one stage's outbound p2p link, by factor F (default "
         "2.5)\n";
  return 1;
}

int demo_main(const std::vector<std::string>& args, std::ostream& out,
              std::ostream& err) {
  std::string out_path;
  int straggler = -1;
  int slow_link = -1;
  double factor = 2.5;
  for (std::size_t i = 0; i < args.size(); ++i) {
    const std::string& arg = args[i];
    auto value = [&]() -> const char* {
      return (i + 1 < args.size()) ? args[++i].c_str() : nullptr;
    };
    if (arg == "--straggler") {
      const char* v = value();
      if (!v) return demo_usage(err);
      straggler = std::atoi(v);
    } else if (arg == "--slow-link") {
      const char* v = value();
      if (!v) return demo_usage(err);
      slow_link = std::atoi(v);
    } else if (arg == "--factor") {
      const char* v = value();
      if (!v) return demo_usage(err);
      factor = std::atof(v);
    } else if (out_path.empty() && !arg.empty() && arg[0] != '-') {
      out_path = arg;
    } else {
      return demo_usage(err);
    }
  }
  if (out_path.empty()) return demo_usage(err);

  engine::JobConfig cfg;
  cfg.model = model::config_175b();
  cfg.par.tp = 8;
  cfg.par.pp = 8;
  cfg.par.vpp = 6;
  cfg.par.dp = 4;
  cfg.global_batch = 256;
  cfg.ops = model::OperatorProfile::megascale();
  cfg.overlap = engine::OverlapOptions::megascale();
  const auto pp = static_cast<std::size_t>(cfg.par.pp);
  if (straggler >= 0) {
    if (straggler >= cfg.par.pp) {
      err << "msdiag demo: --straggler rank out of range [0, " << cfg.par.pp
          << ")\n";
      return 1;
    }
    cfg.stage_speed.assign(pp, 1.0);
    cfg.stage_speed[static_cast<std::size_t>(straggler)] = factor;
  }
  if (slow_link >= 0) {
    if (slow_link >= cfg.par.pp) {
      err << "msdiag demo: --slow-link stage out of range [0, " << cfg.par.pp
          << ")\n";
      return 1;
    }
    cfg.link_speed.assign(pp, 1.0);
    cfg.link_speed[static_cast<std::size_t>(slow_link)] = factor;
  }
  if (const auto problem = engine::validate(cfg); !problem.empty()) {
    err << "msdiag demo: invalid config: " << problem << "\n";
    return 1;
  }

  telemetry::Tracer tracer;
  cfg.tracer = &tracer;
  const auto result = engine::simulate_iteration(cfg);
  if (!diag::write_text_file(out_path,
                             telemetry::jsonl_spans(tracer.spans()))) {
    err << "msdiag demo: cannot write " << out_path << "\n";
    return 1;
  }
  out << "wrote " << out_path << " (" << tracer.size() << " spans, step "
      << format_duration(result.iteration_time) << ")\n";
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::string> args;
  args.reserve(static_cast<std::size_t>(argc > 1 ? argc - 1 : 0));
  for (int i = 1; i < argc; ++i) args.emplace_back(argv[i]);
  if (!args.empty() && args.front() == "demo") {
    return demo_main({args.begin() + 1, args.end()}, std::cout, std::cerr);
  }
  if (!args.empty() && args.front() == "ledger") {
    return ms::telemetry::ledger_main({args.begin() + 1, args.end()},
                                      std::cout, std::cerr);
  }
  if (!args.empty() && args.front() == "calibrate") {
    return ms::calib::calibrate_main({args.begin() + 1, args.end()}, std::cout,
                                     std::cerr);
  }
  if (!args.empty() && args.front() == "fabric") {
    return ms::net::fabric::fabric_main({args.begin() + 1, args.end()},
                                        std::cout, std::cerr);
  }
  if (args.empty() || args.front() == "--help" || args.front() == "-h") {
    std::cerr << ms::diag::msdiag_usage() << ms::telemetry::ledger_usage()
              << ms::calib::calibrate_usage() << ms::net::fabric::fabric_usage();
    return args.empty() ? 1 : 0;
  }
  return ms::diag::msdiag_main(args, std::cout, std::cerr);
}
