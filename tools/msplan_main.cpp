// msplan — command-line front end for the parallelism-plan auto-tuner.
//
//   msplan --model 175b --gpus 12288 --batch 6144
//   msplan --model 530b --gpus 3360 --batch 2048 --json plans.jsonl
//
// ms-lint: allow-file(test-coverage): thin CLI shim; all command logic is
// in src/plan/plan_cli.cpp, exercised by tests/plan_test.cpp.
#include <iostream>
#include <string>
#include <vector>

#include "plan/plan_cli.h"

int main(int argc, char** argv) {
  std::vector<std::string> args(argv + 1, argv + argc);
  if (args.empty()) {
    std::cerr << ms::plan::msplan_usage();
    return 1;
  }
  return ms::plan::msplan_main(args, std::cout, std::cerr);
}
