#!/usr/bin/env python3
"""Repo-specific lint: project rules the C++ compiler cannot enforce.

Run from anywhere:  python3 tools/lint.py [--root <repo>] [--list-rules]

Exit status is 0 when clean, 1 when any rule fires. Output is one
`path:line: [rule] message` per violation, grep/IDE friendly.

Rules
-----
unit-literal   Powers-of-ten scale literals (1e3/1e6/1e9/1e12/1e15) are
               banned in src/ outside core/units.h and core/time.h. Silent
               8x (Gb vs GB) and 1000x (ms vs us) errors live in exactly
               these constants; units.h is the one audited home for them.

raw-seconds    Public headers must not traffic in `double <name>_s` /
               `double <name>_seconds`. Simulated time is integral TimeNs
               (core/time.h); float seconds across API boundaries is how
               two code paths that must coincide start to drift.

test-coverage  Every .cpp under src/ must be referenced from tests/ —
               either its header is included by some test, or its stem
               appears in test code. Untested translation units are where
               silent correctness drift accumulates.

pragma-once    Every header under src/ uses #pragma once.

ordered-digest Digest/report-emitting files (anything whose text mentions
               digests, JSONL or to_json) may not range-iterate unordered
               containers: iteration order is hash-layout-dependent, which
               is exactly how bit-identical determinism digests silently
               break between runs, platforms and libstdc++ versions.
               Everything under src/plan/ and src/net/fabric/ is held to
               this bar unconditionally — planner files feed the
               ranked-report digest and observatory files feed the fabric
               determinism digest even when the digest lives in a sibling
               TU.

ambient-entropy rand()/srand(), std::random_device, time(nullptr),
               system_clock, steady_clock and high_resolution_clock are
               banned outside the designated homes (core/rng.*, core/time.*,
               core/wallclock.*). All randomness routes through
               derive_seed() substreams; simulated time through TimeNs; host
               wall time through wallclock_ns() (core/wallclock.h), the one
               module allowed to touch the monotonic clock.

mutex-annotated Raw std::mutex/std::condition_variable/lock_guard etc. are
               banned outside core/mutex.h. Clang thread-safety analysis
               cannot see through unannotated std primitives; ms::Mutex /
               MutexLock / CondVar are the annotated capabilities.

Self-test
---------
    python3 tools/lint.py --root <corpus> --expect <expected.txt>
runs the linter over a fixture tree and exits 0 only when the findings
(`path:line: [rule]`, message dropped) exactly match the expected file
(one finding per line; blank lines and # comments ignored).

Waivers
-------
Inline, same line or the line above the offender:
    // ms-lint: allow(<rule>): <justification>
Whole file, anywhere in the file:
    // ms-lint: allow-file(<rule>): <justification>
A justification is required; a bare waiver is itself a violation.
"""

from __future__ import annotations

import argparse
import pathlib
import re
import sys

RULES = {
    "unit-literal": "no 1e3/1e6/1e9/1e12/1e15 scale literals outside core/units.h",
    "raw-seconds": "no `double *_s` / `double *_seconds` in public headers; use TimeNs",
    "test-coverage": "every src/**/*.cpp is referenced by a test",
    "pragma-once": "every header under src/ uses #pragma once",
    "ordered-digest":
        "digest/report-emitting files (and all of src/plan/ and"
        " src/net/fabric/) may not range-iterate unordered containers",
    "ambient-entropy":
        "no rand()/random_device/time(nullptr)/system_clock/steady_clock"
        " outside core/rng.*, core/time.*, core/wallclock.*",
    "mutex-annotated":
        "no raw std::mutex/condition_variable/lock_guard outside core/mutex.h;"
        " use ms::Mutex/MutexLock/CondVar",
}

UNIT_LITERAL_RE = re.compile(r"(?<![\w.])1e\+?(?:3|6|9|12|15)\b")
RAW_SECONDS_RE = re.compile(r"\bdouble\s+(\w+(?:_s|_sec|_seconds))\b")
# Marks a file as digest/report-emitting for the ordered-digest rule.
DIGEST_FILE_RE = re.compile(r"digest|jsonl|to_json", re.IGNORECASE)
UNORDERED_DECL_RE = re.compile(r"std::unordered_(?:map|set|multimap|multiset)\s*<")
RANGE_FOR_RE = re.compile(r"\bfor\s*\([^;)]*:\s*(?:\w+(?:\.|->))*(\w+)\s*\)")
AMBIENT_ENTROPY_RE = re.compile(
    r"\brandom_device\b|\bsystem_clock\b|\bsteady_clock\b|"
    r"\bhigh_resolution_clock\b|(?<![\w:.>])s?rand\s*\(|"
    r"(?<![\w:.>])time\s*\(\s*(?:nullptr|NULL|0)\s*\)")
RAW_MUTEX_RE = re.compile(
    r"std::(?:mutex|shared_mutex|recursive_mutex|timed_mutex|"
    r"condition_variable(?:_any)?|lock_guard|unique_lock|scoped_lock)\b")
ALLOW_RE = re.compile(r"ms-lint:\s*allow\((?P<rule>[\w-]+)\)\s*:\s*\S")
ALLOW_FILE_RE = re.compile(r"ms-lint:\s*allow-file\((?P<rule>[\w-]+)\)\s*:\s*\S")
BARE_WAIVER_RE = re.compile(r"ms-lint:\s*allow(?:-file)?\([\w-]+\)\s*:?\s*$")

# Files exempt per rule (repo-relative, forward slashes). units.h/time.h
# are the designated homes of unit-conversion constants and the
# seconds<->TimeNs boundary, so both rules would be self-defeating there.
EXEMPT = {
    "unit-literal": {"src/core/units.h", "src/core/time.h"},
    "raw-seconds": {"src/core/time.h", "src/core/units.h"},
    # rng.* is where seeds become streams; time.* owns the seconds<->TimeNs
    # boundary; wallclock.* is the ONE module allowed to read the host's
    # monotonic clock (simulator self-profiling, real deadline waits).
    # Everything else derives.
    "ambient-entropy": {"src/core/rng.h", "src/core/rng.cpp",
                        "src/core/time.h", "src/core/time.cpp",
                        "src/core/wallclock.h", "src/core/wallclock.cpp"},
    # The annotated wrapper home: the std::mutex inside ms::Mutex IS the
    # wrapped capability.
    "mutex-annotated": {"src/core/mutex.h"},
}


class Linter:
    def __init__(self, root: pathlib.Path):
        self.root = root
        self.violations: list[tuple[pathlib.Path, int, str, str]] = []

    def report(self, path: pathlib.Path, line_no: int, rule: str, msg: str):
        self.violations.append((path, line_no, rule, msg))

    # ---------------------------------------------------------- helpers

    def src_files(self, suffixes: tuple[str, ...]) -> list[pathlib.Path]:
        src = self.root / "src"
        return sorted(p for p in src.rglob("*") if p.suffix in suffixes)

    @staticmethod
    def file_waivers(lines: list[str]) -> set[str]:
        waived = set()
        for line in lines:
            m = ALLOW_FILE_RE.search(line)
            if m:
                waived.add(m.group("rule"))
        return waived

    @staticmethod
    def line_waived(lines: list[str], idx: int, rule: str) -> bool:
        for probe in (idx, idx - 1):
            if probe < 0:
                continue
            m = ALLOW_RE.search(lines[probe])
            if m and m.group("rule") == rule:
                return True
        return False

    @staticmethod
    def unordered_names(text: str) -> set[str]:
        """Identifiers declared as std::unordered_* containers.

        Balances template angle brackets (declarations may nest and span
        lines), then takes the first identifier after the closing `>`.
        Aliases (`using X = std::unordered_map<...>;`) yield no name; the
        rule is a heuristic, not a type checker.
        """
        names: set[str] = set()
        for m in UNORDERED_DECL_RE.finditer(text):
            i = m.end() - 1  # at the opening '<'
            depth = 0
            while i < len(text):
                if text[i] == "<":
                    depth += 1
                elif text[i] == ">":
                    depth -= 1
                    if depth == 0:
                        break
                i += 1
            dm = re.match(r"\s*&?\s*([A-Za-z_]\w*)", text[i + 1:i + 200])
            if dm:
                names.add(dm.group(1))
        return names

    @staticmethod
    def sibling(path: pathlib.Path) -> pathlib.Path:
        return path.with_suffix(".h" if path.suffix == ".cpp" else ".cpp")

    # ------------------------------------------------------------ rules

    def check_line_rules(self):
        for path in self.src_files((".h", ".cpp")):
            rel = path.relative_to(self.root).as_posix()
            lines = path.read_text().splitlines()
            waived_file = self.file_waivers(lines)
            for idx, line in enumerate(lines):
                if BARE_WAIVER_RE.search(line):
                    self.report(path, idx + 1, "waiver",
                                "waiver without a justification")
                code = line.split("//", 1)[0]

                rule = "unit-literal"
                if (rel not in EXEMPT[rule] and rule not in waived_file
                        and UNIT_LITERAL_RE.search(code)
                        and not self.line_waived(lines, idx, rule)):
                    self.report(
                        path, idx + 1, rule,
                        f"scale literal `{UNIT_LITERAL_RE.search(code).group()}`"
                        " outside core/units.h; use the units.h helpers")

                rule = "raw-seconds"
                if path.suffix == ".h" and rel not in EXEMPT[rule] \
                        and rule not in waived_file:
                    m = RAW_SECONDS_RE.search(code)
                    # `ops_per_sec`-style rates are doubles by nature; the
                    # rule targets durations.
                    if m and re.search(r"per_s(?:ec)?$", m.group(1)):
                        m = None
                    if m and not self.line_waived(lines, idx, rule):
                        self.report(
                            path, idx + 1, rule,
                            f"`double {m.group(1)}` in a public header; "
                            "simulated time crosses APIs as TimeNs")

                rule = "ambient-entropy"
                if (rel not in EXEMPT[rule] and rule not in waived_file
                        and AMBIENT_ENTROPY_RE.search(code)
                        and not self.line_waived(lines, idx, rule)):
                    self.report(
                        path, idx + 1, rule,
                        f"ambient entropy `{AMBIENT_ENTROPY_RE.search(code).group().strip()}`;"
                        " randomness routes through derive_seed() substreams"
                        " (core/rng.h), wall time through core/time.h")

                rule = "mutex-annotated"
                if (rel not in EXEMPT[rule] and rule not in waived_file
                        and RAW_MUTEX_RE.search(code)
                        and not self.line_waived(lines, idx, rule)):
                    self.report(
                        path, idx + 1, rule,
                        f"raw `{RAW_MUTEX_RE.search(code).group()}`; clang"
                        " thread-safety analysis cannot see std primitives —"
                        " use ms::Mutex/MutexLock/CondVar (core/mutex.h)")

    def check_ordered_digest(self):
        rule = "ordered-digest"
        for path in self.src_files((".h", ".cpp")):
            text = path.read_text()
            rel = path.relative_to(self.root).as_posix()
            # src/plan/ is digest-emitting by construction: every planner
            # file feeds the ranked-report digest (often through a sibling
            # TU), so the keyword heuristic is skipped there. Same for
            # src/net/fabric/: every observatory file feeds the fabric
            # determinism digest and the JSONL/sketch exports.
            if not rel.startswith(("src/plan/", "src/net/fabric/")) \
                    and not DIGEST_FILE_RE.search(text):
                continue
            lines = text.splitlines()
            if rule in self.file_waivers(lines):
                continue
            names = self.unordered_names(text)
            sib = self.sibling(path)
            if sib.is_file():
                names |= self.unordered_names(sib.read_text())
            if not names:
                continue
            for idx, line in enumerate(lines):
                code = line.split("//", 1)[0]
                m = RANGE_FOR_RE.search(code)
                if (m and m.group(1) in names
                        and not self.line_waived(lines, idx, rule)):
                    self.report(
                        path, idx + 1, rule,
                        f"range-for over unordered container `{m.group(1)}` in"
                        " a digest/report-emitting file; iteration order is"
                        " hash-layout-dependent — use an ordered container or"
                        " sort first")

    def check_pragma_once(self):
        for path in self.src_files((".h",)):
            text = path.read_text()
            if "#pragma once" not in text:
                self.report(path, 1, "pragma-once", "header missing #pragma once")

    def check_test_coverage(self):
        tests_dir = self.root / "tests"
        if not tests_dir.is_dir():  # fixture corpora may omit tests/
            return
        corpus = "\n".join(
            p.read_text() for p in sorted(tests_dir.rglob("*.cpp")))
        for path in self.src_files((".cpp",)):
            rel = path.relative_to(self.root / "src").as_posix()
            header = rel[:-4] + ".h"
            stem = path.stem
            lines = path.read_text().splitlines()
            if "test-coverage" in self.file_waivers(lines):
                continue
            if f'#include "{header}"' in corpus:
                continue
            if re.search(rf"\b{re.escape(stem)}\b", corpus):
                continue
            self.report(
                path, 1, "test-coverage",
                f"no test includes {header} or mentions `{stem}`; add coverage"
                " or a justified ms-lint: allow-file(test-coverage)")

    # ------------------------------------------------------------ drive

    def run(self) -> int:
        self.check_line_rules()
        self.check_ordered_digest()
        self.check_pragma_once()
        self.check_test_coverage()
        for path, line_no, rule, msg in self.violations:
            rel = path.relative_to(self.root).as_posix()
            print(f"{rel}:{line_no}: [{rule}] {msg}")
        n = len(self.violations)
        print(f"lint: {n} violation{'s' if n != 1 else ''}"
              f" across {len({v[0] for v in self.violations})} files"
              if n else "lint: clean")
        return 1 if n else 0

    def run_expect(self, expected_path: pathlib.Path) -> int:
        """Self-test mode: findings must exactly match `expected_path`."""
        self.check_line_rules()
        self.check_ordered_digest()
        self.check_pragma_once()
        self.check_test_coverage()
        got = sorted(
            f"{path.relative_to(self.root).as_posix()}:{line_no}: [{rule}]"
            for path, line_no, rule, _ in self.violations)
        want = sorted(
            line.strip() for line in expected_path.read_text().splitlines()
            if line.strip() and not line.lstrip().startswith("#"))
        if got == want:
            print(f"lint-selftest: {len(got)} findings match expected")
            return 0
        for line in sorted(set(want) - set(got)):
            print(f"lint-selftest: MISSING  {line}")
        for line in sorted(set(got) - set(want)):
            print(f"lint-selftest: UNEXPECTED  {line}")
        # Exact multiset match: duplicates matter too.
        if set(got) == set(want):
            print("lint-selftest: duplicate-count mismatch")
        return 1


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    default_root = pathlib.Path(__file__).resolve().parent.parent
    parser.add_argument("--root", type=pathlib.Path, default=default_root,
                        help="repository root (default: tools/..)")
    parser.add_argument("--list-rules", action="store_true")
    parser.add_argument("--expect", type=pathlib.Path, default=None,
                        help="self-test: findings must exactly match this file"
                             " (path:line: [rule] per line)")
    args = parser.parse_args()
    if args.list_rules:
        for rule, desc in RULES.items():
            print(f"{rule}: {desc}")
        return 0
    linter = Linter(args.root.resolve())
    if args.expect is not None:
        return linter.run_expect(args.expect.resolve())
    return linter.run()


if __name__ == "__main__":
    sys.exit(main())
