#!/usr/bin/env python3
"""Repo-specific lint: project rules the C++ compiler cannot enforce.

Run from anywhere:  python3 tools/lint.py [--root <repo>] [--list-rules]

Exit status is 0 when clean, 1 when any rule fires. Output is one
`path:line: [rule] message` per violation, grep/IDE friendly.

Rules
-----
unit-literal   Powers-of-ten scale literals (1e3/1e6/1e9/1e12/1e15) are
               banned in src/ outside core/units.h and core/time.h. Silent
               8x (Gb vs GB) and 1000x (ms vs us) errors live in exactly
               these constants; units.h is the one audited home for them.

raw-seconds    Public headers must not traffic in `double <name>_s` /
               `double <name>_seconds`. Simulated time is integral TimeNs
               (core/time.h); float seconds across API boundaries is how
               two code paths that must coincide start to drift.

test-coverage  Every .cpp under src/ must be referenced from tests/ —
               either its header is included by some test, or its stem
               appears in test code. Untested translation units are where
               silent correctness drift accumulates.

pragma-once    Every header under src/ uses #pragma once.

Waivers
-------
Inline, same line or the line above the offender:
    // ms-lint: allow(<rule>): <justification>
Whole file, anywhere in the file:
    // ms-lint: allow-file(<rule>): <justification>
A justification is required; a bare waiver is itself a violation.
"""

from __future__ import annotations

import argparse
import pathlib
import re
import sys

RULES = {
    "unit-literal": "no 1e3/1e6/1e9/1e12/1e15 scale literals outside core/units.h",
    "raw-seconds": "no `double *_s` / `double *_seconds` in public headers; use TimeNs",
    "test-coverage": "every src/**/*.cpp is referenced by a test",
    "pragma-once": "every header under src/ uses #pragma once",
}

UNIT_LITERAL_RE = re.compile(r"(?<![\w.])1e\+?(?:3|6|9|12|15)\b")
RAW_SECONDS_RE = re.compile(r"\bdouble\s+(\w+(?:_s|_sec|_seconds))\b")
ALLOW_RE = re.compile(r"ms-lint:\s*allow\((?P<rule>[\w-]+)\)\s*:\s*\S")
ALLOW_FILE_RE = re.compile(r"ms-lint:\s*allow-file\((?P<rule>[\w-]+)\)\s*:\s*\S")
BARE_WAIVER_RE = re.compile(r"ms-lint:\s*allow(?:-file)?\([\w-]+\)\s*:?\s*$")

# Files exempt per rule (repo-relative, forward slashes). units.h/time.h
# are the designated homes of unit-conversion constants and the
# seconds<->TimeNs boundary, so both rules would be self-defeating there.
EXEMPT = {
    "unit-literal": {"src/core/units.h", "src/core/time.h"},
    "raw-seconds": {"src/core/time.h", "src/core/units.h"},
}


class Linter:
    def __init__(self, root: pathlib.Path):
        self.root = root
        self.violations: list[tuple[pathlib.Path, int, str, str]] = []

    def report(self, path: pathlib.Path, line_no: int, rule: str, msg: str):
        self.violations.append((path, line_no, rule, msg))

    # ---------------------------------------------------------- helpers

    def src_files(self, suffixes: tuple[str, ...]) -> list[pathlib.Path]:
        src = self.root / "src"
        return sorted(p for p in src.rglob("*") if p.suffix in suffixes)

    @staticmethod
    def file_waivers(lines: list[str]) -> set[str]:
        waived = set()
        for line in lines:
            m = ALLOW_FILE_RE.search(line)
            if m:
                waived.add(m.group("rule"))
        return waived

    @staticmethod
    def line_waived(lines: list[str], idx: int, rule: str) -> bool:
        for probe in (idx, idx - 1):
            if probe < 0:
                continue
            m = ALLOW_RE.search(lines[probe])
            if m and m.group("rule") == rule:
                return True
        return False

    # ------------------------------------------------------------ rules

    def check_line_rules(self):
        for path in self.src_files((".h", ".cpp")):
            rel = path.relative_to(self.root).as_posix()
            lines = path.read_text().splitlines()
            waived_file = self.file_waivers(lines)
            for idx, line in enumerate(lines):
                if BARE_WAIVER_RE.search(line):
                    self.report(path, idx + 1, "waiver",
                                "waiver without a justification")
                code = line.split("//", 1)[0]

                rule = "unit-literal"
                if (rel not in EXEMPT[rule] and rule not in waived_file
                        and UNIT_LITERAL_RE.search(code)
                        and not self.line_waived(lines, idx, rule)):
                    self.report(
                        path, idx + 1, rule,
                        f"scale literal `{UNIT_LITERAL_RE.search(code).group()}`"
                        " outside core/units.h; use the units.h helpers")

                rule = "raw-seconds"
                if path.suffix == ".h" and rel not in EXEMPT[rule] \
                        and rule not in waived_file:
                    m = RAW_SECONDS_RE.search(code)
                    # `ops_per_sec`-style rates are doubles by nature; the
                    # rule targets durations.
                    if m and re.search(r"per_s(?:ec)?$", m.group(1)):
                        m = None
                    if m and not self.line_waived(lines, idx, rule):
                        self.report(
                            path, idx + 1, rule,
                            f"`double {m.group(1)}` in a public header; "
                            "simulated time crosses APIs as TimeNs")

    def check_pragma_once(self):
        for path in self.src_files((".h",)):
            text = path.read_text()
            if "#pragma once" not in text:
                self.report(path, 1, "pragma-once", "header missing #pragma once")

    def check_test_coverage(self):
        tests_dir = self.root / "tests"
        corpus = "\n".join(
            p.read_text() for p in sorted(tests_dir.rglob("*.cpp")))
        for path in self.src_files((".cpp",)):
            rel = path.relative_to(self.root / "src").as_posix()
            header = rel[:-4] + ".h"
            stem = path.stem
            lines = path.read_text().splitlines()
            if "test-coverage" in self.file_waivers(lines):
                continue
            if f'#include "{header}"' in corpus:
                continue
            if re.search(rf"\b{re.escape(stem)}\b", corpus):
                continue
            self.report(
                path, 1, "test-coverage",
                f"no test includes {header} or mentions `{stem}`; add coverage"
                " or a justified ms-lint: allow-file(test-coverage)")

    # ------------------------------------------------------------ drive

    def run(self) -> int:
        self.check_line_rules()
        self.check_pragma_once()
        self.check_test_coverage()
        for path, line_no, rule, msg in self.violations:
            rel = path.relative_to(self.root).as_posix()
            print(f"{rel}:{line_no}: [{rule}] {msg}")
        n = len(self.violations)
        print(f"lint: {n} violation{'s' if n != 1 else ''}"
              f" across {len({v[0] for v in self.violations})} files"
              if n else "lint: clean")
        return 1 if n else 0


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    default_root = pathlib.Path(__file__).resolve().parent.parent
    parser.add_argument("--root", type=pathlib.Path, default=default_root,
                        help="repository root (default: tools/..)")
    parser.add_argument("--list-rules", action="store_true")
    args = parser.parse_args()
    if args.list_rules:
        for rule, desc in RULES.items():
            print(f"{rule}: {desc}")
        return 0
    return Linter(args.root.resolve()).run()


if __name__ == "__main__":
    sys.exit(main())
