#!/usr/bin/env python3
"""Regenerates the calibration fixtures under tests/golden/calib/.

Two artifacts, describing the *same* simulated step:

  self_trace.jsonl   -- the repo's own span JSONL, produced by
                        `msdiag calibrate --emit` with known off-nominal
                        generating parameters (gemm 0.65, attn 0.50,
                        mem 0.95, net 0.85);
  kineto_trace.json  -- a Kineto/Chrome-trace re-export of the same spans,
                        deliberately exercising the quirk tolerance of the
                        ingest layer: string pids ("rank 0"), fractional-us
                        timestamps, metadata/instant/counter events (one
                        counter carrying NaN), an extra B/E pair, and an X
                        event with a missing dur.

`msdiag calibrate` must fit both to identical parameters (equal digests):
the quirk events are all non-fittable and the real spans are value-equal.

Usage: tools/make_calib_fixtures.py [--msdiag build/tools/msdiag]
"""

from __future__ import annotations

import argparse
import json
import os
import subprocess
import sys

REPO = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
GOLDEN = os.path.join(REPO, "tests", "golden", "calib")

GEN_PARAMS = ["--gemm-eff", "0.65", "--attn-eff", "0.50",
              "--mem-eff", "0.95", "--net-eff", "0.85"]


def emit_self_trace(msdiag: str, path: str) -> list[dict]:
    subprocess.run([msdiag, "calibrate", "--emit", path, "--preset",
                    "fixture", *GEN_PARAMS], check=True)
    spans = []
    with open(path, encoding="utf-8") as f:
        for line in f:
            line = line.strip()
            if line:
                spans.append(json.loads(line))
    return spans


def kineto_events(spans: list[dict]) -> list[dict]:
    """Re-exports spans as Chrome-trace events with Kineto quirks."""
    events = []
    # Metadata events with string pids -- the process_name noise every
    # Kineto capture opens with.
    ranks = sorted({s["rank"] for s in spans})
    for r in ranks:
        events.append({"ph": "M", "name": "process_name", "pid": f"rank {r}",
                       "args": {"name": f"python {4000 + r}"}})
    # A counter series; one sample carries NaN (bare token, not a string),
    # which the JSON parser must tolerate.
    events.append({"ph": "C", "name": "GPU 0 Utilization", "pid": "rank 0",
                   "ts": 0.0, "args": {"GPU Utilization": float("nan")}})
    events.append({"ph": "i", "name": "Iteration Start", "pid": "rank 0",
                   "tid": "stream 7", "ts": 0.0, "s": "g"})
    # An unfitted wrapper span as a B/E pair (profiler step bracket).
    last_end_us = max(s["end_ns"] for s in spans) / 1000.0
    events.append({"ph": "B", "name": "ProfilerStep#0", "pid": "rank 0",
                   "tid": "step", "ts": 0.0})
    # The real spans: complete events, fractional-us timestamps, string
    # pids, the span detail carried verbatim in args (the round-trip path
    # telemetry::chrome_trace uses), tag as cat.
    for s in spans:
        events.append({
            "ph": "X",
            "name": s["name"],
            "cat": s["tag"],
            "pid": f"rank {s['rank']}",
            "tid": "stream 0",
            "ts": s["start_ns"] / 1000.0,
            "dur": (s["end_ns"] - s["start_ns"]) / 1000.0,
            "args": {"detail": s.get("detail", ""),
                     "External id": len(events)},
        })
    events.append({"ph": "E", "name": "ProfilerStep#0", "pid": "rank 0",
                   "tid": "step", "ts": last_end_us})
    # Truncated capture artifact: an X event that lost its dur.
    events.append({"ph": "X", "name": "cudaDeviceSynchronize",
                   "pid": "rank 0", "tid": "runtime", "ts": last_end_us})
    return events


def main() -> int:
    ap = argparse.ArgumentParser()
    ap.add_argument("--msdiag",
                    default=os.path.join(REPO, "build", "tools", "msdiag"))
    args = ap.parse_args()
    os.makedirs(GOLDEN, exist_ok=True)

    self_path = os.path.join(GOLDEN, "self_trace.jsonl")
    spans = emit_self_trace(args.msdiag, self_path)
    print(f"wrote {self_path} ({len(spans)} spans)")

    kineto = {"schemaVersion": 1,
              "deviceProperties": [{"name": "simulated A100"}],
              "traceEvents": kineto_events(spans)}
    kineto_path = os.path.join(GOLDEN, "kineto_trace.json")
    with open(kineto_path, "w", encoding="utf-8") as f:
        json.dump(kineto, f, indent=1)
        f.write("\n")
    print(f"wrote {kineto_path} ({len(kineto['traceEvents'])} events)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
