// msprof — command-line front end for the simulator self-profiler.
//
//   msprof run fig11_production_run --json prof.jsonl --trace self.json
//   msprof run micro_engine --top 10
//   msprof report prof.jsonl
//   msprof diff base.jsonl cand.jsonl
//   msprof overhead --budget 0.03
//   msprof list
//
// ms-lint: allow-file(test-coverage): thin CLI shim; all command logic is
// in src/prof/msprof.cpp, exercised by tests/prof_test.cpp.
#include <iostream>
#include <string>
#include <vector>

#include "prof/msprof.h"

int main(int argc, char** argv) {
  std::vector<std::string> args;
  args.reserve(static_cast<std::size_t>(argc > 1 ? argc - 1 : 0));
  for (int i = 1; i < argc; ++i) args.emplace_back(argv[i]);
  return ms::prof::msprof_main(args, std::cout, std::cerr);
}
